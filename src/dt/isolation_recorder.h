// IsolationRecorder: bridges the running engine to the §4 theory.
//
// When attached to a DvsEngine, it records the actual transaction history
// of the workload — DML commits as writes, DT refreshes as *derivations*
// (with their exact source versions, straight from the frontier), and
// SELECTs as reads of the versions they resolved — as an
// isolation::History. DetectPhenomena() then audits the live workload:
// the read skew of Figure 2 becomes something you can observe in a real
// pipeline rather than a hand-built example, and the engine's stated
// guarantee (single-DT reads are SI, mixed reads only Read Committed, §4)
// becomes checkable.
//
// Object naming: catalog object names; version numbers: storage VersionIds.

#ifndef DVS_DT_ISOLATION_RECORDER_H_
#define DVS_DT_ISOLATION_RECORDER_H_

#include "catalog/catalog.h"
#include "isolation/history.h"

namespace dvs {

class IsolationRecorder {
 public:
  /// Records a DML commit: `txn` installed `version` of `object`.
  void RecordWrite(const std::string& object, VersionId version) {
    int txn = next_txn_++;
    history_.Write(txn, object, static_cast<int>(version));
    history_.Commit(txn);
  }

  /// Records a refresh commit: the DT's new version derives from the exact
  /// source versions it consumed.
  void RecordRefresh(const std::string& dt_name, VersionId new_version,
                     const std::vector<std::pair<std::string, VersionId>>&
                         sources) {
    int txn = next_txn_++;
    std::vector<isolation::Ver> inputs;
    inputs.reserve(sources.size());
    for (const auto& [name, v] : sources) {
      inputs.push_back({name, static_cast<int>(v)});
    }
    history_.Derive(txn, dt_name, static_cast<int>(new_version),
                    std::move(inputs));
    history_.Commit(txn);
  }

  /// Records a query: one read event per (object, resolved version).
  void RecordQuery(
      const std::vector<std::pair<std::string, VersionId>>& reads) {
    int txn = next_txn_++;
    for (const auto& [name, v] : reads) {
      history_.Read(txn, name, static_cast<int>(v));
    }
    history_.Commit(txn);
  }

  const isolation::History& history() const { return history_; }

 private:
  isolation::History history_;
  int next_txn_ = 1;
};

}  // namespace dvs

#endif  // DVS_DT_ISOLATION_RECORDER_H_
