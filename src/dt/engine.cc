#include "dt/engine.h"

#include "exec/evaluator.h"
#include "ivm/incrementality.h"
#include "obs/profile.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace dvs {

const char* QueryIsolationName(QueryIsolation i) {
  return i == QueryIsolation::kSnapshotIsolation ? "SNAPSHOT_ISOLATION"
                                                 : "READ_COMMITTED";
}

Result<ObjectId> DvsEngine::ObjectIdOf(const std::string& name) const {
  DVS_ASSIGN_OR_RETURN(const CatalogObject* obj, catalog_.Find(name));
  return obj->id;
}

void DvsEngine::EnableIsolationRecording() {
  if (recorder_ != nullptr) return;
  recorder_ = std::make_unique<IsolationRecorder>();
  refresh_.set_commit_observer(
      [this](const CatalogObject& dt, VersionId new_version,
             const std::unordered_map<ObjectId, VersionId>& sources) {
        std::vector<std::pair<std::string, VersionId>> inputs;
        for (const auto& [id, v] : sources) {
          auto obj = catalog_.FindById(id);
          if (obj.ok()) inputs.emplace_back(obj.value()->name, v);
        }
        recorder_->RecordRefresh(dt.name, new_version, inputs);
      });
}

void DvsEngine::RecordQueryReads(const PlanPtr& plan) {
  if (recorder_ == nullptr) return;
  const Micros now = clock_.Now();
  std::vector<std::pair<std::string, VersionId>> reads;
  for (ObjectId id : CollectScanIds(plan)) {
    if (id == sql::kDualTableId) continue;
    auto found = catalog_.FindById(id);
    if (!found.ok()) continue;
    const CatalogObject* obj = found.value();
    if (obj->kind == ObjectKind::kDynamicTable) {
      auto latest = obj->dt->LatestRefreshAtOrBefore(now);
      if (latest.has_value()) {
        reads.emplace_back(obj->name, *obj->dt->VersionForRefresh(*latest));
      }
    } else if (obj->storage != nullptr) {
      VersionId v =
          obj->storage->ResolveVersionAt(HlcTimestamp::AtWallTime(now));
      if (v != kInvalidVersionId) reads.emplace_back(obj->name, v);
    }
  }
  if (!reads.empty()) recorder_->RecordQuery(reads);
}

Result<QueryResult> DvsEngine::Execute(const std::string& sql) {
  DVS_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  return ExecuteStatement(stmt);
}

Result<QueryResult> DvsEngine::Query(const std::string& sql) {
  DVS_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  if (stmt.kind != sql::StatementKind::kSelect) {
    return InvalidArgument("Query() accepts only SELECT statements");
  }
  return ExecuteSelect(*stmt.select);
}

Result<QueryResult> DvsEngine::ExecuteStatement(const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::StatementKind::kSelect:
      return ExecuteSelect(*stmt.select);
    case sql::StatementKind::kCreateTable:
      return ExecuteCreateTable(*stmt.create_table);
    case sql::StatementKind::kCreateView:
      return ExecuteCreateView(*stmt.create_view);
    case sql::StatementKind::kCreateDynamicTable:
      return ExecuteCreateDt(*stmt.create_dt);
    case sql::StatementKind::kDrop:
      return ExecuteDrop(*stmt.drop);
    case sql::StatementKind::kInsert:
      return ExecuteInsert(*stmt.insert);
    case sql::StatementKind::kDelete:
      return ExecuteDelete(*stmt.del);
    case sql::StatementKind::kUpdate:
      return ExecuteUpdate(*stmt.update);
    case sql::StatementKind::kAlterDt:
      return ExecuteAlterDt(*stmt.alter_dt);
    case sql::StatementKind::kExplain:
      return ExecuteExplain(*stmt.explain);
  }
  return Internal("unhandled statement kind");
}

Result<QueryResult> DvsEngine::ExecuteSelect(const sql::SelectStmt& stmt) {
  sql::Binder binder(catalog_);
  if (table_fns_) binder.set_table_function_provider(&table_fns_);
  DVS_ASSIGN_OR_RETURN(sql::BindResult bound, binder.BindSelect(stmt));

  const Micros now = clock_.Now();
  ExecContext ctx;
  ctx.resolve_scan = refresh_.MakeResolver(now, /*exact_dt=*/false);
  ctx.eval.current_time = now;
  ctx.force_row_path = force_row_path_;
  DVS_ASSIGN_OR_RETURN(std::vector<Row> rows,
                       ExecutePlanRows(*bound.plan, ctx));

  QueryResult out;
  out.schema = bound.plan->output_schema;
  out.rows = std::move(rows);

  // §4: single-DT reads get Snapshot Isolation; anything mixing tables is
  // Read Committed.
  size_t dt_count = 0, other_count = 0;
  for (ObjectId id : CollectScanIds(bound.plan)) {
    if (id == sql::kDualTableId) continue;
    auto obj = catalog_.FindById(id);
    if (!obj.ok()) continue;
    if (obj.value()->kind == ObjectKind::kDynamicTable) {
      ++dt_count;
    } else {
      ++other_count;
    }
  }
  out.isolation = (dt_count == 1 && other_count == 0)
                      ? QueryIsolation::kSnapshotIsolation
                      : QueryIsolation::kReadCommitted;
  RecordQueryReads(bound.plan);
  return out;
}

Result<QueryResult> DvsEngine::ExecuteExplain(const sql::ExplainStmt& stmt) {
  // Bind like a direct SELECT (table functions available) — EXPLAIN shows
  // exactly the plan ExecuteSelect would run.
  sql::Binder binder(catalog_);
  if (table_fns_) binder.set_table_function_provider(&table_fns_);
  DVS_ASSIGN_OR_RETURN(sql::BindResult bound, binder.BindSelect(*stmt.select));

  QueryResult out;
  out.schema.AddColumn("plan", DataType::kString);
  if (!stmt.analyze) {
    for (std::string& line : obs::RenderPlanLines(*bound.plan)) {
      out.rows.push_back({Value::String(std::move(line))});
    }
    out.message = "EXPLAIN";
    return out;
  }

  // ANALYZE: execute with a private sink — armed per-execution, independent
  // of the global profiling flag — then annotate the plan with its counters.
  obs::ProfileSink sink;
  sink.DeclarePlan(*bound.plan);
  const Micros now = clock_.Now();
  ExecContext ctx;
  ctx.resolve_scan = refresh_.MakeResolver(now, /*exact_dt=*/false);
  ctx.eval.current_time = now;
  ctx.force_row_path = force_row_path_;
  ctx.profile = &sink;
  DVS_ASSIGN_OR_RETURN(std::vector<IdRow> rows, ExecutePlan(*bound.plan, ctx));
  for (std::string& line :
       obs::RenderAnalyzedPlanLines(*bound.plan, sink, /*include_wall=*/true)) {
    out.rows.push_back({Value::String(std::move(line))});
  }
  out.message = "EXPLAIN ANALYZE";
  out.affected_rows = static_cast<int64_t>(rows.size());
  RecordQueryReads(bound.plan);
  return out;
}

Result<std::vector<Row>> DvsEngine::QueryAsOf(const std::string& select_sql,
                                              Micros ts) {
  DVS_ASSIGN_OR_RETURN(auto select, sql::ParseSelect(select_sql));
  sql::Binder binder(catalog_);
  DVS_ASSIGN_OR_RETURN(sql::BindResult bound, binder.BindSelect(*select));
  ExecContext ctx;
  ctx.resolve_scan = refresh_.MakeResolver(ts, /*exact_dt=*/true);
  ctx.eval.current_time = ts;
  return ExecutePlanRows(*bound.plan, ctx);
}

Result<QueryResult> DvsEngine::QueryChanges(const std::string& table,
                                            Micros from_ts, Micros to_ts) {
  DVS_ASSIGN_OR_RETURN(const CatalogObject* obj, catalog_.Find(table));
  if (obj->storage == nullptr) {
    return InvalidArgument("'" + table + "' has no storage (view?)");
  }
  auto resolve = [&](Micros ts) -> Result<VersionId> {
    if (obj->kind == ObjectKind::kDynamicTable) {
      auto latest = obj->dt->LatestRefreshAtOrBefore(ts);
      if (!latest.has_value()) {
        return FailedPrecondition("'" + table + "' has no data at or before " +
                                  std::to_string(ts));
      }
      return *obj->dt->VersionForRefresh(*latest);
    }
    VersionId v = obj->storage->ResolveVersionAt(HlcTimestamp::AtWallTime(ts));
    if (v == kInvalidVersionId) {
      if (obj->storage->first_version() > 1) {
        return FailedPrecondition("'" + table + "' change scan at " +
                                  std::to_string(ts) +
                                  " is below the retention window");
      }
      return FailedPrecondition("'" + table + "' did not exist at " +
                                std::to_string(ts));
    }
    return v;
  };
  DVS_ASSIGN_OR_RETURN(VersionId v0, resolve(from_ts));
  DVS_ASSIGN_OR_RETURN(VersionId v1, resolve(to_ts));
  DVS_ASSIGN_OR_RETURN(ChangeSet changes, obj->storage->ScanChanges(v0, v1));

  QueryResult out;
  out.schema = obj->storage->schema();
  out.schema.AddColumn("$action", DataType::kString);
  out.schema.AddColumn("$row_id", DataType::kInt64);
  for (ChangeRow& c : changes) {
    Row row = std::move(c.values);
    row.push_back(Value::String(ChangeActionName(c.action)));
    row.push_back(Value::Int(static_cast<int64_t>(c.row_id)));
    out.rows.push_back(std::move(row));
  }
  return out;
}

Result<QueryResult> DvsEngine::ExecuteCreateTable(
    const sql::CreateTableStmt& stmt) {
  HlcTimestamp ts = txn_.NextCommitTimestamp();
  if (!stmt.clone_source.empty()) {
    DVS_ASSIGN_OR_RETURN(const CatalogObject* src,
                         catalog_.Find(stmt.clone_source));
    const bool src_dynamic = src->kind == ObjectKind::kDynamicTable;
    if (stmt.expect_dynamic != src_dynamic) {
      return InvalidArgument(
          "clone kind mismatch: source '" + stmt.clone_source + "' is a " +
          ObjectKindName(src->kind));
    }
    DVS_ASSIGN_OR_RETURN(ObjectId id,
                         catalog_.CloneObject(stmt.name, stmt.clone_source, ts));
    if (src_dynamic) catalog_.Grant(id, "owner", Privilege::kOwnership);
    QueryResult out;
    out.message = std::string(src_dynamic ? "Dynamic table " : "Table ") +
                  stmt.name + " cloned from " + stmt.clone_source;
    return out;
  }
  ObjectId id;
  if (stmt.or_replace) {
    DVS_ASSIGN_OR_RETURN(id, catalog_.ReplaceBaseTable(stmt.name, stmt.schema,
                                                       ts,
                                                       stmt.min_data_retention));
  } else {
    DVS_ASSIGN_OR_RETURN(id, catalog_.CreateBaseTable(stmt.name, stmt.schema,
                                                      ts,
                                                      stmt.min_data_retention));
  }
  (void)id;
  QueryResult out;
  out.message = "Table " + stmt.name + " created";
  return out;
}

Result<QueryResult> DvsEngine::ExecuteCreateView(
    const sql::CreateViewStmt& stmt) {
  sql::Binder binder(catalog_);
  DVS_ASSIGN_OR_RETURN(sql::BindResult bound, binder.BindSelect(*stmt.select));
  DVS_ASSIGN_OR_RETURN(
      ObjectId id, catalog_.CreateView(stmt.name, stmt.select_sql, bound.plan,
                                       txn_.NextCommitTimestamp()));
  (void)id;
  QueryResult out;
  out.message = "View " + stmt.name + " created";
  return out;
}

Result<QueryResult> DvsEngine::ExecuteCreateDt(
    const sql::CreateDynamicTableStmt& stmt) {
  if (stmt.or_replace && catalog_.Exists(stmt.name)) {
    DVS_RETURN_IF_ERROR(
        catalog_.DropObject(stmt.name, txn_.NextCommitTimestamp()));
  }

  sql::Binder binder(catalog_);
  DVS_ASSIGN_OR_RETURN(sql::BindResult bound, binder.BindSelect(*stmt.select));

  // Decide the effective refresh mode (§3.3.2).
  IncrementalityAnalysis analysis = AnalyzeIncrementality(*bound.plan);
  bool incremental;
  switch (stmt.refresh_mode) {
    case RefreshMode::kIncremental:
      if (!analysis.incremental) {
        return Unsupported("REFRESH_MODE = INCREMENTAL not possible: " +
                           analysis.reason);
      }
      incremental = true;
      break;
    case RefreshMode::kFull:
      incremental = false;
      break;
    case RefreshMode::kAuto:
      incremental = analysis.incremental;
      break;
  }

  // The warehouse is part of the definition; create lazily with defaults so
  // examples stay terse (real Snowflake requires a CREATE WAREHOUSE).
  warehouses_.GetOrCreate(stmt.warehouse);

  DynamicTableDef def;
  def.sql = stmt.select_sql;
  def.target_lag = stmt.target_lag;
  def.warehouse = stmt.warehouse;
  def.requested_mode = stmt.refresh_mode;
  def.initialize_on_create = stmt.initialize_on_create;
  def.min_data_retention = stmt.min_data_retention;

  DVS_ASSIGN_OR_RETURN(
      ObjectId id,
      catalog_.CreateDynamicTable(stmt.name, std::move(def), bound.plan,
                                  bound.plan->output_schema, incremental,
                                  std::move(bound.dependencies),
                                  txn_.NextCommitTimestamp()));
  // Owner role gets full control; MONITOR/OPERATE exist for finer grants.
  catalog_.Grant(id, "owner", Privilege::kOwnership);

  if (stmt.initialize_on_create) {
    auto init = refresh_.Initialize(id, clock_.Now());
    if (!init.ok()) return init.status();
  }

  QueryResult out;
  out.message = std::string("Dynamic table ") + stmt.name + " created (" +
                (incremental ? "INCREMENTAL" : "FULL") + ")";
  return out;
}

Result<QueryResult> DvsEngine::ExecuteDrop(const sql::DropStmt& stmt) {
  HlcTimestamp ts = txn_.NextCommitTimestamp();
  QueryResult out;
  if (stmt.undrop) {
    DVS_RETURN_IF_ERROR(catalog_.UndropObject(stmt.name, ts));
    out.message = stmt.name + " restored";
  } else {
    DVS_RETURN_IF_ERROR(catalog_.DropObject(stmt.name, ts));
    out.message = stmt.name + " dropped";
  }
  return out;
}

Result<QueryResult> DvsEngine::ExecuteInsert(const sql::InsertStmt& stmt) {
  DVS_ASSIGN_OR_RETURN(CatalogObject * obj, catalog_.Find(stmt.table));
  if (obj->kind != ObjectKind::kBaseTable) {
    return InvalidArgument("INSERT target '" + stmt.table +
                           "' is not a base table");
  }
  const Schema& schema = obj->storage->schema();
  sql::Binder binder(catalog_);
  EvalContext ec;
  ec.current_time = clock_.Now();

  std::vector<Row> rows;
  rows.reserve(stmt.rows.size());
  for (const auto& ast_row : stmt.rows) {
    if (ast_row.size() != schema.size()) {
      return InvalidArgument("INSERT row has " +
                             std::to_string(ast_row.size()) +
                             " values; table has " +
                             std::to_string(schema.size()) + " columns");
    }
    Row row;
    row.reserve(ast_row.size());
    for (size_t i = 0; i < ast_row.size(); ++i) {
      DVS_ASSIGN_OR_RETURN(ExprPtr e, binder.BindConstExpr(*ast_row[i]));
      DVS_ASSIGN_OR_RETURN(Value v, Eval(*e, {}, ec));
      DVS_ASSIGN_OR_RETURN(Value coerced,
                           CastValue(v, schema.column(i).type));
      row.push_back(std::move(coerced));
    }
    rows.push_back(std::move(row));
  }
  ChangeSet changes = obj->storage->MakeInsertChanges(std::move(rows));
  int64_t n = static_cast<int64_t>(changes.size());
  auto commit = txn_.CommitWrites({{obj->storage.get(), std::move(changes), obj->id}});
  if (!commit.ok()) return commit.status();
  if (recorder_ != nullptr) {
    recorder_->RecordWrite(obj->name, obj->storage->latest_version());
  }

  QueryResult out;
  out.affected_rows = n;
  out.message = std::to_string(n) + " rows inserted";
  return out;
}

Result<QueryResult> DvsEngine::ExecuteDelete(const sql::DeleteStmt& stmt) {
  DVS_ASSIGN_OR_RETURN(CatalogObject * obj, catalog_.Find(stmt.table));
  if (obj->kind != ObjectKind::kBaseTable) {
    return InvalidArgument("DELETE target '" + stmt.table +
                           "' is not a base table");
  }
  sql::Binder binder(catalog_);
  ExprPtr pred;
  if (stmt.where) {
    DVS_ASSIGN_OR_RETURN(
        pred, binder.BindExprForSchema(*stmt.where, obj->storage->schema()));
  }
  EvalContext ec;
  ec.current_time = clock_.Now();

  ChangeSet changes;
  for (const IdRow& r : obj->storage->ScanLatest()) {
    bool match = true;
    if (pred) {
      DVS_ASSIGN_OR_RETURN(match, EvalPredicate(*pred, r.values, ec));
    }
    if (match) {
      changes.push_back({ChangeAction::kDelete, r.id, r.values});
    }
  }
  int64_t n = static_cast<int64_t>(changes.size());
  if (n > 0) {
    auto commit = txn_.CommitWrites({{obj->storage.get(), std::move(changes), obj->id}});
    if (!commit.ok()) return commit.status();
    if (recorder_ != nullptr) {
      recorder_->RecordWrite(obj->name, obj->storage->latest_version());
    }
  }
  QueryResult out;
  out.affected_rows = n;
  out.message = std::to_string(n) + " rows deleted";
  return out;
}

Result<QueryResult> DvsEngine::ExecuteUpdate(const sql::UpdateStmt& stmt) {
  DVS_ASSIGN_OR_RETURN(CatalogObject * obj, catalog_.Find(stmt.table));
  if (obj->kind != ObjectKind::kBaseTable) {
    return InvalidArgument("UPDATE target '" + stmt.table +
                           "' is not a base table");
  }
  const Schema& schema = obj->storage->schema();
  sql::Binder binder(catalog_);
  ExprPtr pred;
  if (stmt.where) {
    DVS_ASSIGN_OR_RETURN(pred,
                         binder.BindExprForSchema(*stmt.where, schema));
  }
  std::vector<std::pair<size_t, ExprPtr>> assignments;
  for (const auto& [col, ast] : stmt.assignments) {
    auto idx = schema.FindColumn(col);
    if (!idx.has_value()) {
      return BindError("unknown column '" + col + "' in UPDATE");
    }
    DVS_ASSIGN_OR_RETURN(ExprPtr e, binder.BindExprForSchema(*ast, schema));
    assignments.emplace_back(*idx, std::move(e));
  }
  EvalContext ec;
  ec.current_time = clock_.Now();

  ChangeSet changes;
  int64_t n = 0;
  for (const IdRow& r : obj->storage->ScanLatest()) {
    bool match = true;
    if (pred) {
      DVS_ASSIGN_OR_RETURN(match, EvalPredicate(*pred, r.values, ec));
    }
    if (!match) continue;
    Row updated = r.values;
    for (const auto& [idx, e] : assignments) {
      DVS_ASSIGN_OR_RETURN(Value v, Eval(*e, r.values, ec));
      DVS_ASSIGN_OR_RETURN(Value coerced,
                           CastValue(v, schema.column(idx).type));
      updated[idx] = std::move(coerced);
    }
    // An update is a delete + insert with the same row id (§5.5).
    changes.push_back({ChangeAction::kDelete, r.id, r.values});
    changes.push_back({ChangeAction::kInsert, r.id, std::move(updated)});
    ++n;
  }
  if (n > 0) {
    auto commit = txn_.CommitWrites({{obj->storage.get(), std::move(changes), obj->id}});
    if (!commit.ok()) return commit.status();
    if (recorder_ != nullptr) {
      recorder_->RecordWrite(obj->name, obj->storage->latest_version());
    }
  }
  QueryResult out;
  out.affected_rows = n;
  out.message = std::to_string(n) + " rows updated";
  return out;
}

Result<QueryResult> DvsEngine::ExecuteAlterDt(const sql::AlterDtStmt& stmt) {
  DVS_ASSIGN_OR_RETURN(CatalogObject * obj, catalog_.Find(stmt.name));
  if (obj->kind != ObjectKind::kDynamicTable) {
    return InvalidArgument("'" + stmt.name + "' is not a dynamic table");
  }
  QueryResult out;
  switch (stmt.action) {
    case sql::AlterDtStmt::Action::kRefresh: {
      // Manual refresh (§3.1.2): data timestamp after the command was
      // issued; refreshes everything upstream first.
      auto r = refresh_.RefreshWithUpstream(obj->id, clock_.Now());
      if (!r.ok()) return r.status();
      out.message = "Refreshed " + stmt.name + " (" +
                    RefreshActionName(r.value().action) + ") to timestamp " +
                    std::to_string(r.value().data_timestamp);
      break;
    }
    case sql::AlterDtStmt::Action::kSuspend:
      obj->dt->state = DtState::kSuspended;
      catalog_.NotifyAlter(DdlOp::kAlterSuspend, obj, "",
                           txn_.NextCommitTimestamp());
      out.message = stmt.name + " suspended";
      break;
    case sql::AlterDtStmt::Action::kResume:
      obj->dt->state = DtState::kActive;
      obj->dt->consecutive_failures = 0;
      obj->dt->transient_failures = 0;
      catalog_.NotifyAlter(DdlOp::kAlterResume, obj, "",
                           txn_.NextCommitTimestamp());
      out.message = stmt.name + " resumed";
      break;
    case sql::AlterDtStmt::Action::kSetTargetLag:
      // The scheduler reads the definition on every tick, so the new lag
      // (and the refresh period derived from it) takes effect at the next
      // tick without restarting anything.
      obj->dt->def.target_lag = stmt.target_lag;
      catalog_.NotifyAlter(DdlOp::kAlterTargetLag, obj,
                           stmt.target_lag.ToString(),
                           txn_.NextCommitTimestamp());
      out.message = stmt.name + " target lag set to " +
                    stmt.target_lag.ToString();
      break;
  }
  return out;
}

}  // namespace dvs
