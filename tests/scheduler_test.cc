// Tests for sched/ + warehouse/: canonical periods, DOWNSTREAM lag
// resolution, skip semantics, lag accounting, auto-suspend, billing.

#include <gtest/gtest.h>

#include "sched/scheduler.h"

namespace dvs {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : clock_(0), engine_(clock_), sched_(&engine_, &clock_) {}

  void Exec(const std::string& sql) {
    auto r = engine_.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }

  ObjectId Id(const std::string& name) {
    return engine_.ObjectIdOf(name).value();
  }

  int CountRefreshes(const std::string& name, bool include_nodata = true) {
    int n = 0;
    for (const RefreshRecord& r : sched_.log()) {
      if (r.dt_name != name || r.skipped || r.failed) continue;
      if (!include_nodata && r.action == RefreshAction::kNoData) continue;
      ++n;
    }
    return n;
  }

  VirtualClock clock_;
  DvsEngine engine_;
  Scheduler sched_;
};

TEST(CanonicalPeriodTest, PowersOfTwoTimes48s) {
  EXPECT_EQ(LargestCanonicalPeriodAtMost(10 * kMicrosPerSecond),
            kCanonicalBasePeriod);  // clamps up to the base
  EXPECT_EQ(LargestCanonicalPeriodAtMost(48 * kMicrosPerSecond),
            48 * kMicrosPerSecond);
  EXPECT_EQ(LargestCanonicalPeriodAtMost(100 * kMicrosPerSecond),
            96 * kMicrosPerSecond);
  EXPECT_EQ(LargestCanonicalPeriodAtMost(30 * kMicrosPerMinute),
            1536 * kMicrosPerSecond);  // 48*2^5
}

TEST(WarehouseTest, SchedulingAndBilling) {
  Warehouse wh("wh", 1, /*auto_suspend=*/60 * kMicrosPerSecond);
  auto s1 = wh.Schedule(100 * kMicrosPerSecond, 10 * kMicrosPerSecond);
  EXPECT_EQ(s1.start, 100 * kMicrosPerSecond);
  EXPECT_EQ(s1.end, 110 * kMicrosPerSecond);
  // Overlapping request queues.
  auto s2 = wh.Schedule(105 * kMicrosPerSecond, 5 * kMicrosPerSecond);
  EXPECT_EQ(s2.start, 110 * kMicrosPerSecond);
  // Small idle gap stays billed (no suspend)...
  auto s3 = wh.Schedule(130 * kMicrosPerSecond, 5 * kMicrosPerSecond);
  EXPECT_EQ(s3.start, 130 * kMicrosPerSecond);
  EXPECT_EQ(wh.billed(), (10 + 5 + 15 + 5) * kMicrosPerSecond);
  // ...but a long gap suspends: idle not billed, resume counted.
  int resumes_before = wh.resumes();
  wh.Schedule(1000 * kMicrosPerSecond, 5 * kMicrosPerSecond);
  EXPECT_EQ(wh.resumes(), resumes_before + 1);
  EXPECT_EQ(wh.billed(), (10 + 5 + 15 + 5 + 5) * kMicrosPerSecond);
}

TEST_F(SchedulerTest, SchedulesWithinTargetLag) {
  Exec("CREATE TABLE src (v INT)");
  Exec("INSERT INTO src VALUES (1)");
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '5 minutes' WAREHOUSE = wh "
       "INITIALIZE = ON_SCHEDULE AS SELECT v FROM src");
  sched_.RunUntil(30 * kMicrosPerMinute);

  // Period for 5 min lag: largest 48*2^n <= 150s => 96s.
  EXPECT_EQ(sched_.RefreshPeriod(Id("dt")), 96 * kMicrosPerSecond);
  EXPECT_GT(CountRefreshes("dt"), 10);

  // Lag never exceeds the target after initialization.
  for (Micros t = 10 * kMicrosPerMinute; t <= 30 * kMicrosPerMinute;
       t += kMicrosPerMinute) {
    auto lag = sched_.LagAt(Id("dt"), t);
    ASSERT_TRUE(lag.has_value());
    EXPECT_LE(*lag, 5 * kMicrosPerMinute) << "at t=" << t;
  }
}

TEST_F(SchedulerTest, DownstreamLagResolution) {
  Exec("CREATE TABLE src (v INT)");
  Exec("CREATE DYNAMIC TABLE up TARGET_LAG = DOWNSTREAM WAREHOUSE = wh "
       "INITIALIZE = ON_SCHEDULE AS SELECT v FROM src");
  // No consumers yet: DOWNSTREAM resolves to nothing; never scheduled.
  EXPECT_FALSE(sched_.EffectiveTargetLag(Id("up")).has_value());
  EXPECT_EQ(sched_.RefreshPeriod(Id("up")), 0u);

  Exec("CREATE DYNAMIC TABLE down TARGET_LAG = '10 minutes' WAREHOUSE = wh "
       "INITIALIZE = ON_SCHEDULE AS SELECT v FROM up");
  // Now the upstream inherits the consumer's lag (§3.2).
  ASSERT_TRUE(sched_.EffectiveTargetLag(Id("up")).has_value());
  EXPECT_EQ(*sched_.EffectiveTargetLag(Id("up")), 10 * kMicrosPerMinute);
  // Upstream period <= downstream period, both canonical, aligned.
  Micros pu = sched_.RefreshPeriod(Id("up"));
  Micros pd = sched_.RefreshPeriod(Id("down"));
  EXPECT_LE(pu, pd);
  EXPECT_EQ(pd % pu, 0u);
}

TEST_F(SchedulerTest, ChainSharesDataTimestamps) {
  Exec("CREATE TABLE src (v INT)");
  Exec("INSERT INTO src VALUES (1)");
  Exec("CREATE DYNAMIC TABLE a TARGET_LAG = DOWNSTREAM WAREHOUSE = wh "
       "INITIALIZE = ON_SCHEDULE AS SELECT v FROM src");
  Exec("CREATE DYNAMIC TABLE b TARGET_LAG = '5 minutes' WAREHOUSE = wh "
       "INITIALIZE = ON_SCHEDULE AS SELECT v FROM a");
  sched_.RunUntil(20 * kMicrosPerMinute);

  // Every data timestamp of b must also be a data timestamp of a (snapshot
  // isolation across the chain, §5.2).
  const auto& a_meta = *engine_.catalog().Find("a").value()->dt;
  const auto& b_meta = *engine_.catalog().Find("b").value()->dt;
  ASSERT_FALSE(b_meta.refresh_versions.empty());
  for (const auto& [ts, v] : b_meta.refresh_versions) {
    (void)v;
    EXPECT_TRUE(a_meta.refresh_versions.count(ts))
        << "b refreshed at " << ts << " without a";
  }
}

TEST_F(SchedulerTest, NoDataRefreshesDominateQuietSources) {
  Exec("CREATE TABLE src (v INT)");
  Exec("INSERT INTO src VALUES (1)");
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '2 minutes' WAREHOUSE = wh "
       "INITIALIZE = ON_SCHEDULE AS SELECT v FROM src");
  // Source never changes after the first refresh.
  sched_.RunUntil(kMicrosPerHour);
  int total = CountRefreshes("dt");
  int with_data = CountRefreshes("dt", /*include_nodata=*/false);
  EXPECT_GT(total, 20);
  EXPECT_LE(with_data, 2);  // initialize (+ maybe one more)
}

TEST_F(SchedulerTest, SkipWhenPreviousRefreshStillRunning) {
  // Tiny warehouse + expensive refresh: durations exceed the period.
  SchedulerOptions opts;
  opts.cost_model.fixed_cost = 2 * kMicrosPerSecond;
  opts.cost_model.cost_per_krow = 2000 * kMicrosPerSecond;  // very slow
  Scheduler slow_sched(&engine_, &clock_, opts);

  Exec("CREATE TABLE src (v INT)");
  for (int i = 0; i < 20; ++i) {
    Exec("INSERT INTO src VALUES (" + std::to_string(i) + ")");
  }
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "REFRESH_MODE = FULL INITIALIZE = ON_SCHEDULE AS SELECT v FROM src");

  // Keep the source changing so refreshes stay expensive.
  for (int round = 0; round < 30; ++round) {
    slow_sched.RunUntil(clock_.Now() + kMicrosPerMinute);
    Exec("INSERT INTO src VALUES (" + std::to_string(100 + round) + ")");
  }
  int skips = 0;
  for (const RefreshRecord& r : slow_sched.log()) {
    if (r.dt_name == "dt" && r.skipped) ++skips;
  }
  EXPECT_GT(skips, 0);  // §3.3.3 skip semantics engaged

  // Skips never break DVS: contents still match the defining query.
  const auto& meta = *engine_.catalog().Find("dt").value()->dt;
  ASSERT_TRUE(meta.initialized);
  auto expected = engine_.QueryAsOf(meta.def.sql, meta.data_timestamp);
  ASSERT_TRUE(expected.ok());
  auto actual = engine_.Query("SELECT * FROM dt");
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(actual.value().rows.size(), expected.value().size());
}

TEST_F(SchedulerTest, FailingDtAutoSuspendsAndStopsConsuming) {
  Exec("CREATE TABLE src (v INT)");
  Exec("INSERT INTO src VALUES (0)");  // division by zero from the start
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '2 minutes' WAREHOUSE = wh "
       "INITIALIZE = ON_SCHEDULE AS SELECT 100 / v AS q FROM src");
  sched_.RunUntil(2 * kMicrosPerHour);

  const auto& meta = *engine_.catalog().Find("dt").value()->dt;
  EXPECT_EQ(meta.state, DtState::kSuspended);
  int failures = 0, attempts_after_suspend = 0;
  bool suspended_seen = false;
  for (const RefreshRecord& r : sched_.log()) {
    if (r.dt_name != "dt") continue;
    if (r.failed) {
      ++failures;
      suspended_seen = failures >= 5;
    } else if (suspended_seen && !r.skipped) {
      ++attempts_after_suspend;
    }
  }
  EXPECT_EQ(failures, 5);  // then suspended, no more attempts
  EXPECT_EQ(attempts_after_suspend, 0);
}

TEST_F(SchedulerTest, LagSawtoothShape) {
  Exec("CREATE TABLE src (v INT)");
  Exec("INSERT INTO src VALUES (1)");
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '5 minutes' WAREHOUSE = wh "
       "INITIALIZE = ON_SCHEDULE AS SELECT v FROM src");
  sched_.RunUntil(kMicrosPerHour);

  // Figure 4's identities: trough lag = e_i − v_i, peak lag = e_i − v_{i−1},
  // and between refreshes lag rises at exactly 1 s/s.
  const RefreshRecord* prev = nullptr;
  for (const RefreshRecord& r : sched_.log()) {
    if (r.dt_name != "dt" || r.skipped || r.failed) continue;
    EXPECT_EQ(r.trough_lag, r.end_time - r.data_timestamp);
    if (prev != nullptr) {
      EXPECT_EQ(r.peak_lag, r.end_time - prev->data_timestamp);
      // 1 s/s rise between commits:
      Micros mid = prev->end_time + (r.end_time - prev->end_time) / 2;
      auto lag_mid = sched_.LagAt(Id("dt"), mid);
      ASSERT_TRUE(lag_mid.has_value());
      EXPECT_EQ(*lag_mid, mid - prev->data_timestamp);
    }
    prev = &r;
  }
  ASSERT_NE(prev, nullptr);
}

TEST_F(SchedulerTest, SuspendedDtIsNotScheduled) {
  Exec("CREATE TABLE src (v INT)");
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '2 minutes' WAREHOUSE = wh "
       "INITIALIZE = ON_SCHEDULE AS SELECT v FROM src");
  Exec("ALTER DYNAMIC TABLE dt SUSPEND");
  sched_.RunUntil(kMicrosPerHour);
  EXPECT_EQ(CountRefreshes("dt"), 0);
}

TEST_F(SchedulerTest, ManualRefreshCoexistsWithSchedule) {
  Exec("CREATE TABLE src (v INT)");
  Exec("INSERT INTO src VALUES (1)");
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '5 minutes' WAREHOUSE = wh "
       "INITIALIZE = ON_SCHEDULE AS SELECT v FROM src");
  sched_.RunUntil(10 * kMicrosPerMinute);
  Exec("INSERT INTO src VALUES (2)");
  Exec("ALTER DYNAMIC TABLE dt REFRESH");
  auto r = engine_.Query("SELECT * FROM dt");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows.size(), 2u);
  sched_.RunUntil(20 * kMicrosPerMinute);  // scheduling continues unperturbed
  EXPECT_GT(CountRefreshes("dt"), 2);
}

}  // namespace
}  // namespace dvs
