// Tests for DvsEngine::QueryChanges — the change-query surface inherited
// from Snowflake Streams (paper ref [5]): net logical changes of a table or
// DT between two data timestamps, with $ACTION / $ROW_ID metadata columns.

#include <gtest/gtest.h>

#include "dt/engine.h"

namespace dvs {
namespace {

class ChangesTest : public ::testing::Test {
 protected:
  ChangesTest() : clock_(kMicrosPerHour), engine_(clock_) {}

  void Exec(const std::string& sql) {
    auto r = engine_.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }

  VirtualClock clock_;
  DvsEngine engine_;
};

TEST_F(ChangesTest, BaseTableInsertsAndDeletes) {
  Exec("CREATE TABLE t (v INT)");
  Exec("INSERT INTO t VALUES (1), (2)");
  Micros t0 = clock_.Now();

  clock_.Advance(kMicrosPerMinute);
  Exec("INSERT INTO t VALUES (3)");
  Exec("DELETE FROM t WHERE v = 1");
  Micros t1 = clock_.Now();

  auto r = engine_.QueryChanges("t", t0, t1);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Schema = table columns + metadata.
  ASSERT_EQ(r.value().schema.size(), 3u);
  EXPECT_EQ(r.value().schema.column(1).name, "$action");
  EXPECT_EQ(r.value().schema.column(2).name, "$row_id");

  int inserts = 0, deletes = 0;
  for (const Row& row : r.value().rows) {
    if (row[1].string_value() == "INSERT") {
      ++inserts;
      EXPECT_EQ(row[0].int_value(), 3);
    } else {
      ++deletes;
      EXPECT_EQ(row[0].int_value(), 1);
    }
  }
  EXPECT_EQ(inserts, 1);
  EXPECT_EQ(deletes, 1);
}

TEST_F(ChangesTest, UpdateAppearsAsDeleteInsertPairWithSameRowId) {
  Exec("CREATE TABLE t (v INT)");
  Exec("INSERT INTO t VALUES (10)");
  Micros t0 = clock_.Now();
  clock_.Advance(kMicrosPerMinute);
  Exec("UPDATE t SET v = 20");
  auto r = engine_.QueryChanges("t", t0, clock_.Now());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows.size(), 2u);
  EXPECT_EQ(r.value().rows[0][2].int_value(), r.value().rows[1][2].int_value());
}

TEST_F(ChangesTest, DtChangesBetweenRefreshes) {
  Exec("CREATE TABLE src (grp STRING, v INT)");
  Exec("INSERT INTO src VALUES ('a', 1), ('b', 2)");
  Exec("CREATE DYNAMIC TABLE agg TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT grp, sum(v) AS total FROM src GROUP BY grp");
  Micros t0 = clock_.Now();

  clock_.Advance(kMicrosPerMinute);
  Exec("INSERT INTO src VALUES ('a', 10)");  // only group 'a' changes
  Exec("ALTER DYNAMIC TABLE agg REFRESH");
  Micros t1 = clock_.Now();

  auto r = engine_.QueryChanges("agg", t0, t1);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Group 'a' was updated: delete old row + insert new row, same row id.
  ASSERT_EQ(r.value().rows.size(), 2u);
  for (const Row& row : r.value().rows) {
    EXPECT_EQ(row[0].string_value(), "a");
  }
  EXPECT_EQ(r.value().rows[0][3].int_value(), r.value().rows[1][3].int_value());
}

TEST_F(ChangesTest, EmptyIntervalYieldsNoChanges) {
  Exec("CREATE TABLE t (v INT)");
  Exec("INSERT INTO t VALUES (1)");
  Micros t0 = clock_.Now();
  clock_.Advance(kMicrosPerMinute);
  auto r = engine_.QueryChanges("t", t0, clock_.Now());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().rows.empty());
}

TEST_F(ChangesTest, ErrorsOnViewsAndMissingTables) {
  Exec("CREATE TABLE t (v INT)");
  Exec("CREATE VIEW vw AS SELECT v FROM t");
  EXPECT_FALSE(engine_.QueryChanges("vw", 0, clock_.Now()).ok());
  EXPECT_FALSE(engine_.QueryChanges("ghost", 0, clock_.Now()).ok());
}

TEST_F(ChangesTest, DtChangesBeforeInitializationFail) {
  Exec("CREATE TABLE t (v INT)");
  Exec("CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "INITIALIZE = ON_SCHEDULE AS SELECT v FROM t");
  auto r = engine_.QueryChanges("d", 0, clock_.Now());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace dvs
