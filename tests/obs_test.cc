// Tests for src/obs/: metrics registry round-trips, histogram interchange
// with the serve/bench twins, deterministic-text filtering, Prometheus
// exposition, trace spans/recorder, and the REFRESH_HISTORY / GRAPH_HISTORY
// table functions (including the worker-count determinism contract and the
// no-introspection-in-definitions rule).

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/introspect.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/scheduler.h"
#include "serve/latency.h"

namespace dvs {
namespace {

// ---- Registry instruments ----

TEST(MetricsRegistryTest, CounterAndGaugeRoundTrip) {
  obs::Registry reg;
  obs::Counter* c = reg.RegisterCounter("test.count", "help", true);
  *c += 3;
  c->Increment();
  EXPECT_EQ(c->load(), 4u);

  obs::Gauge* g = reg.RegisterGauge("test.gauge", "help", false);
  g->Set(-7);

  obs::MetricsSnapshot snap = reg.Snapshot();
  ASSERT_NE(snap.Find("test.count"), nullptr);
  EXPECT_EQ(snap.Find("test.count")->value, 4);
  EXPECT_TRUE(snap.Find("test.count")->deterministic);
  ASSERT_NE(snap.Find("test.gauge"), nullptr);
  EXPECT_EQ(snap.Find("test.gauge")->value, -7);
  EXPECT_FALSE(snap.Find("test.gauge")->deterministic);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotent) {
  obs::Registry reg;
  obs::Counter* a = reg.RegisterCounter("dup", "first", true);
  *a += 5;
  // Same name again: same instrument, first-registration help/flags kept.
  obs::Counter* b = reg.RegisterCounter("dup", "second", false);
  EXPECT_EQ(a, b);
  obs::MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.Find("dup")->value, 5);
  EXPECT_EQ(snap.Find("dup")->help, "first");
  EXPECT_TRUE(snap.Find("dup")->deterministic);
}

TEST(MetricsRegistryTest, UnregisterRemoves) {
  obs::Registry reg;
  reg.RegisterCounter("gone", "h", true);
  EXPECT_EQ(reg.size(), 1u);
  reg.Unregister("gone");
  reg.Unregister("never-existed");  // no-op
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_EQ(reg.Snapshot().Find("gone"), nullptr);
}

TEST(MetricsRegistryTest, HistogramMultiThreadRecordSnapshotText) {
  obs::Registry reg;
  obs::Histogram* h = reg.RegisterHistogram("lat", "h", false);
  constexpr int kThreads = 4, kPer = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kPer; ++i) h->Record(t * 1000 + i);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads * kPer));

  obs::MetricsSnapshot snap = reg.Snapshot();
  const obs::MetricSample* s = snap.Find("lat");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, obs::MetricKind::kHistogram);
  EXPECT_EQ(s->histogram.count, static_cast<uint64_t>(kThreads * kPer));
  // The text encoding expands histograms into .count/.sum/... lines.
  std::string text = snap.ToText();
  EXPECT_NE(text.find("lat.count 40000"), std::string::npos) << text;
  EXPECT_NE(text.find("lat.p99"), std::string::npos) << text;
}

// ---- Histogram interchange: the serve and bench twins share the exact
// bucket layout, so exports merge losslessly into a registry histogram. ----

TEST(HistogramInterchangeTest, ServeLatencyExportsIntoRegistry) {
  serve::LatencyHistogram lh;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&lh, t] {
      for (int i = 0; i < 5000; ++i) lh.Record(t * 37 + i);
    });
  }
  for (auto& th : threads) th.join();

  obs::Registry reg;
  reg.RegisterHistogramFn("serve.lat", "scraped", false,
                          [&lh] { return lh.ExportData(); });
  obs::MetricsSnapshot snap = reg.Snapshot();
  const obs::MetricSample* s = snap.Find("serve.lat");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->histogram.count, lh.count());
  EXPECT_EQ(s->histogram.sum, lh.sum_us());
  // Same bucket layout -> identical quantile estimates.
  EXPECT_DOUBLE_EQ(s->histogram.Quantile(0.99), lh.P99Us());
}

TEST(HistogramInterchangeTest, BenchStreamingMergesIntoObsHistogram) {
  bench::StreamingHistogram sh;
  for (int i = 0; i < 3000; ++i) sh.Add(i * 3);

  obs::Histogram h;
  h.Merge(sh.ExportData());
  h.Merge(sh.ExportData());  // merge twice: counts add bucket-wise
  obs::HistogramData d = h.Export();
  EXPECT_EQ(d.count, 2 * sh.count());
  EXPECT_DOUBLE_EQ(d.Quantile(0.5), sh.Quantile(0.5));
}

TEST(HistogramInterchangeTest, EmptyExportIsEmpty) {
  serve::LatencyHistogram lh;
  obs::HistogramData d = lh.ExportData();
  EXPECT_EQ(d.count, 0u);
  EXPECT_TRUE(d.buckets.empty());
}

// ---- Text encodings ----

TEST(MetricsTextTest, DeterministicTextFiltersNonDeterministic) {
  obs::Registry reg;
  *reg.RegisterCounter("det.count", "h", /*deterministic=*/true) += 9;
  reg.RegisterGauge("wall.gauge", "h", /*deterministic=*/false)->Set(123);

  obs::MetricsSnapshot snap = reg.Snapshot();
  std::string all = snap.ToText();
  std::string det = snap.DeterministicText();
  EXPECT_NE(all.find("det.count 9"), std::string::npos);
  EXPECT_NE(all.find("wall.gauge 123"), std::string::npos);
  EXPECT_NE(det.find("det.count 9"), std::string::npos);
  EXPECT_EQ(det.find("wall.gauge"), std::string::npos) << det;
}

TEST(MetricsTextTest, PrometheusExposition) {
  obs::Registry reg;
  *reg.RegisterCounter("dvs.test.total", "Counted things", true) += 2;
  obs::Histogram* h = reg.RegisterHistogram("dvs.lat", "Latency", false);
  h->Record(10);

  std::string prom = reg.Snapshot().ToPrometheus();
  // Dots become underscores; HELP/TYPE comments present.
  EXPECT_NE(prom.find("# HELP dvs_test_total Counted things"),
            std::string::npos) << prom;
  EXPECT_NE(prom.find("# TYPE dvs_test_total counter"), std::string::npos);
  EXPECT_NE(prom.find("dvs_test_total 2"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE dvs_lat summary"), std::string::npos);
  EXPECT_NE(prom.find("dvs_lat_count 1"), std::string::npos);
}

// ---- Trace spans ----

TEST(TraceTest, DisarmedSpanIsInert) {
  ASSERT_EQ(obs::ActiveTraceRecorder(), nullptr);
  obs::TraceSpan span("test", "noop", "scope");
  EXPECT_FALSE(span.armed());
  span.AddArg("ignored", 1);  // must be a no-op
}

TEST(TraceTest, ArmedSpanRecordsCompleteEvents) {
  obs::TraceRecorder rec;
  {
    obs::ScopedTraceRecorder scope(&rec);
    {
      obs::TraceSpan span("cat", "work", "dt_0");
      ASSERT_TRUE(span.armed());
      span.AddArg("rows", 42);
      span.AddArg("attempt", 2);
    }
    obs::TraceSpan other("cat2", "more");
  }
  EXPECT_EQ(obs::ActiveTraceRecorder(), nullptr);  // scope restored

  std::vector<obs::TraceEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].category, "cat");
  EXPECT_STREQ(events[0].name, "work");
  EXPECT_EQ(events[0].scope, "dt_0");
  EXPECT_GE(events[0].dur_us, 0);
  ASSERT_STREQ(events[0].arg1_name, "rows");
  EXPECT_EQ(events[0].arg1, 42);
  ASSERT_STREQ(events[0].arg2_name, "attempt");
  EXPECT_EQ(events[0].arg2, 2);
  EXPECT_EQ(rec.offered(), 2u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceTest, BoundedRecorderDropsAndCounts) {
  obs::TraceRecorder rec(/*capacity=*/4);
  {
    obs::ScopedTraceRecorder scope(&rec);
    for (int i = 0; i < 10; ++i) obs::TraceSpan span("cat", "n");
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  EXPECT_EQ(rec.offered(), 10u);
}

TEST(TraceTest, WriteChromeTraceShape) {
  obs::TraceRecorder rec;
  {
    obs::ScopedTraceRecorder scope(&rec);
    obs::TraceSpan span("cat", "ev", "with \"quote\" and\nnewline");
  }
  const std::string path = ::testing::TempDir() + "/obs_trace.json";
  ASSERT_TRUE(rec.WriteChromeTrace(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  // The scope's quote and newline were escaped, not emitted raw.
  EXPECT_NE(text.find("with \\\"quote\\\" and\\nnewline"), std::string::npos)
      << text;
}

// ---- Introspection table functions ----

struct MiniRun {
  std::string refresh_history;
  std::string graph_history;
  std::string deterministic_metrics;
};

std::string Render(const QueryResult& qr) {
  std::string out = qr.schema.ToString() + "\n";
  for (const Row& row : qr.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out += "|";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

/// Seeded mini pipeline (two sources, a chained DT) driven for a few
/// windows; everything observable is virtual-time-derived.
MiniRun RunMini(int worker_threads) {
  VirtualClock clock(0);
  DvsEngine engine(clock);
  obs::Registry reg;
  SchedulerOptions opts;
  opts.worker_threads = worker_threads;
  opts.metrics = &reg;
  Scheduler sched(&engine, &clock, opts);

  auto exec = [&engine](const std::string& sql) {
    auto r = engine.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  };
  exec("CREATE TABLE src_a (k INT, v INT)");
  exec("CREATE TABLE src_b (k INT, v INT)");
  exec("CREATE DYNAMIC TABLE dt_a TARGET_LAG = '48 seconds' "
       "WAREHOUSE = wh_0 AS SELECT k, v * 2 AS v2 FROM src_a WHERE v > 0");
  exec("CREATE DYNAMIC TABLE dt_b TARGET_LAG = '96 seconds' "
       "WAREHOUSE = wh_1 AS SELECT k, v FROM src_b");
  exec("CREATE DYNAMIC TABLE dt_c TARGET_LAG = '96 seconds' "
       "WAREHOUSE = wh_0 AS SELECT * FROM dt_a");
  for (int round = 0; round < 6; ++round) {
    exec("INSERT INTO src_a VALUES (" + std::to_string(round) + ", " +
         std::to_string(round % 3 == 0 ? -1 : round) + ")");
    exec("INSERT INTO src_b VALUES (" + std::to_string(round) + ", 1)");
    sched.RunUntil(clock.Now() + kCanonicalBasePeriod);
  }

  obs::InstallIntrospection(&engine, &sched);
  MiniRun out;
  auto rh = engine.Query("SELECT * FROM refresh_history()");
  auto gh = engine.Query("SELECT * FROM graph_history()");
  EXPECT_TRUE(rh.ok()) << rh.status().ToString();
  EXPECT_TRUE(gh.ok()) << gh.status().ToString();
  if (rh.ok()) out.refresh_history = Render(rh.value());
  if (gh.ok()) out.graph_history = Render(gh.value());
  out.deterministic_metrics = reg.Snapshot().DeterministicText();
  return out;
}

TEST(IntrospectionTest, WorkerCountInvariance) {
  MiniRun serial = RunMini(0);
  MiniRun parallel_run = RunMini(4);
  ASSERT_FALSE(serial.refresh_history.empty());
  EXPECT_EQ(serial.refresh_history, parallel_run.refresh_history);
  EXPECT_EQ(serial.graph_history, parallel_run.graph_history);
  EXPECT_EQ(serial.deterministic_metrics, parallel_run.deterministic_metrics);
  // The scheduler counters actually registered and counted.
  EXPECT_NE(serial.deterministic_metrics.find("sched.refreshes"),
            std::string::npos) << serial.deterministic_metrics;
}

class IntrospectionSqlTest : public ::testing::Test {
 protected:
  IntrospectionSqlTest() : clock_(0), engine_(clock_), sched_(&engine_, &clock_) {
    Exec("CREATE TABLE t (k INT, v INT)");
    Exec("CREATE DYNAMIC TABLE dt1 TARGET_LAG = '48 seconds' "
         "WAREHOUSE = wh AS SELECT k, v FROM t");
    Exec("CREATE DYNAMIC TABLE dt2 TARGET_LAG = '48 seconds' "
         "WAREHOUSE = wh AS SELECT k FROM t");
    Exec("INSERT INTO t VALUES (1, 10), (2, 20)");
    sched_.RunUntil(3 * kCanonicalBasePeriod);
    obs::InstallIntrospection(&engine_, &sched_);
  }

  void Exec(const std::string& sql) {
    auto r = engine_.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }

  VirtualClock clock_;
  DvsEngine engine_;
  Scheduler sched_;
};

TEST_F(IntrospectionSqlTest, RefreshHistoryNameFilter) {
  auto all = engine_.Query("SELECT * FROM refresh_history()");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  auto dt1 = engine_.Query("SELECT * FROM refresh_history('dt1')");
  ASSERT_TRUE(dt1.ok()) << dt1.status().ToString();
  ASSERT_GT(dt1.value().rows.size(), 0u);
  EXPECT_LT(dt1.value().rows.size(), all.value().rows.size());
  for (const Row& row : dt1.value().rows) {
    EXPECT_EQ(row[0].ToString(), Value::String("dt1").ToString());
  }
  // Case-insensitive function name and filter; unknown DT -> zero rows.
  auto upper = engine_.Query("SELECT * FROM REFRESH_HISTORY('DT1')");
  ASSERT_TRUE(upper.ok()) << upper.status().ToString();
  EXPECT_EQ(upper.value().rows.size(), dt1.value().rows.size());
  auto none = engine_.Query("SELECT * FROM refresh_history('nope')");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.value().rows.size(), 0u);
}

TEST_F(IntrospectionSqlTest, BadArgumentsRejected) {
  EXPECT_FALSE(engine_.Query("SELECT * FROM refresh_history(42)").ok());
  EXPECT_FALSE(
      engine_.Query("SELECT * FROM refresh_history('a', 'b')").ok());
  EXPECT_FALSE(engine_.Query("SELECT * FROM graph_history(42)").ok());
  EXPECT_FALSE(engine_.Query("SELECT * FROM graph_history('a', 'b')").ok());
  auto unknown = engine_.Query("SELECT * FROM no_such_function()");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().ToString().find("refresh_history"),
            std::string::npos) << unknown.status().ToString();
}

TEST_F(IntrospectionSqlTest, GraphHistoryNameFilter) {
  // Optional name argument, for parity with refresh_history(name?).
  auto all = engine_.Query("SELECT * FROM graph_history()");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(all.value().rows.size(), 2u);
  auto one = engine_.Query("SELECT * FROM graph_history('dt1')");
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  ASSERT_EQ(one.value().rows.size(), 1u);
  EXPECT_EQ(one.value().rows[0][0].ToString(),
            Value::String("dt1").ToString());
  // Case-insensitive filter; unknown DT -> zero rows, matching
  // refresh_history's filter semantics.
  auto upper = engine_.Query("SELECT * FROM GRAPH_HISTORY('DT1')");
  ASSERT_TRUE(upper.ok()) << upper.status().ToString();
  EXPECT_EQ(upper.value().rows.size(), 1u);
  auto none = engine_.Query("SELECT * FROM graph_history('nope')");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.value().rows.size(), 0u);
}

TEST_F(IntrospectionSqlTest, GraphHistoryRows) {
  auto gh = engine_.Query("SELECT * FROM graph_history()");
  ASSERT_TRUE(gh.ok()) << gh.status().ToString();
  EXPECT_EQ(gh.value().rows.size(), 2u);  // dt1, dt2
}

TEST_F(IntrospectionSqlTest, RejectedInsideDefinitions) {
  // Scheduler state must never leak into a persisted plan: DT and view
  // definitions bind without the provider and must fail.
  auto dt = engine_.Execute(
      "CREATE DYNAMIC TABLE dt_bad TARGET_LAG = '48 seconds' WAREHOUSE = wh "
      "AS SELECT * FROM refresh_history()");
  EXPECT_FALSE(dt.ok());
  auto view =
      engine_.Execute("CREATE VIEW v_bad AS SELECT * FROM graph_history()");
  EXPECT_FALSE(view.ok());
  // Plain SELECT over the same functions still works (fixture queries do),
  // and projecting columns through works too.
  auto proj = engine_.Query(
      "SELECT name, state FROM graph_history() WHERE name = 'dt1'");
  ASSERT_TRUE(proj.ok()) << proj.status().ToString();
  ASSERT_EQ(proj.value().rows.size(), 1u);
  EXPECT_EQ(proj.value().rows[0][1].ToString(), Value::String("ACTIVE").ToString());
}

}  // namespace
}  // namespace dvs
