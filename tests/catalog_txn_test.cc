// Tests for catalog/ and txn/: DDL log, drop/undrop, replace, dependency
// queries, RBAC, HLC commit stamping, atomic multi-table commits, locks.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "txn/transaction_manager.h"

namespace dvs {
namespace {

Schema OneCol() { return Schema({{"v", DataType::kInt64}}); }

TEST(CatalogTest, CreateAndFind) {
  Catalog c;
  ASSERT_TRUE(c.CreateBaseTable("t", OneCol(), {1, 0}).ok());
  EXPECT_TRUE(c.Exists("t"));
  EXPECT_TRUE(c.Exists("T"));  // case-insensitive
  EXPECT_TRUE(c.Find("t").ok());
  EXPECT_FALSE(c.Find("nope").ok());
  EXPECT_FALSE(c.CreateBaseTable("t", OneCol(), {2, 0}).ok());  // dup
}

TEST(CatalogTest, DropAndUndropRestoresSameObject) {
  Catalog c;
  ObjectId id = c.CreateBaseTable("t", OneCol(), {1, 0}).value();
  ASSERT_TRUE(c.DropObject("t", {2, 0}).ok());
  EXPECT_FALSE(c.Find("t").ok());
  EXPECT_FALSE(c.FindById(id).ok());  // dropped objects invisible by id too
  ASSERT_TRUE(c.UndropObject("t", {3, 0}).ok());
  EXPECT_EQ(c.Find("t").value()->id, id);  // same object, same id
}

TEST(CatalogTest, UndropWithoutDropFails) {
  Catalog c;
  EXPECT_FALSE(c.UndropObject("ghost", {1, 0}).ok());
  ASSERT_TRUE(c.CreateBaseTable("t", OneCol(), {1, 0}).ok());
  EXPECT_FALSE(c.UndropObject("t", {2, 0}).ok());  // name still taken
}

TEST(CatalogTest, ReplaceCreatesNewObjectId) {
  Catalog c;
  ObjectId id1 = c.CreateBaseTable("t", OneCol(), {1, 0}).value();
  ObjectId id2 = c.ReplaceBaseTable("t", OneCol(), {2, 0}).value();
  EXPECT_NE(id1, id2);
  EXPECT_EQ(c.Find("t").value()->id, id2);
}

TEST(CatalogTest, DdlLogIsOrderedAndComplete) {
  Catalog c;
  ASSERT_TRUE(c.CreateBaseTable("a", OneCol(), {1, 0}).ok());
  ASSERT_TRUE(c.DropObject("a", {2, 0}).ok());
  ASSERT_TRUE(c.UndropObject("a", {3, 0}).ok());
  ASSERT_TRUE(c.ReplaceBaseTable("a", OneCol(), {4, 0}).ok());
  const auto& log = c.ddl_log();
  ASSERT_EQ(log.size(), 5u);  // create, drop, undrop, replace-drop, create
  for (size_t i = 1; i < log.size(); ++i) {
    EXPECT_LT(log[i - 1].seq, log[i].seq);
    EXPECT_LE(log[i - 1].ts, log[i].ts);
  }
}

TEST(CatalogTest, DependencyQueries) {
  Catalog c;
  ObjectId src = c.CreateBaseTable("src", OneCol(), {1, 0}).value();
  // A DT reading src.
  auto select = sql::ParseSelect("SELECT v FROM src").value();
  sql::Binder binder(c);
  auto bound = binder.BindSelect(*select).value();
  DynamicTableDef def;
  def.sql = "SELECT v FROM src";
  def.target_lag = TargetLag::Of(kMicrosPerMinute);
  def.warehouse = "wh";
  ObjectId dt = c.CreateDynamicTable("dt", def, bound.plan,
                                     bound.plan->output_schema, true,
                                     bound.dependencies, {2, 0})
                    .value();
  auto down = c.DownstreamDynamicTables(src);
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0], dt);
  EXPECT_TRUE(c.UpstreamDynamicTables(dt).empty());  // src is a base table

  // Stack another DT on top.
  auto select2 = sql::ParseSelect("SELECT v FROM dt").value();
  sql::Binder binder2(c);
  auto bound2 = binder2.BindSelect(*select2).value();
  ObjectId dt2 = c.CreateDynamicTable("dt2", def, bound2.plan,
                                      bound2.plan->output_schema, true,
                                      bound2.dependencies, {3, 0})
                     .value();
  auto ups = c.UpstreamDynamicTables(dt2);
  ASSERT_EQ(ups.size(), 1u);
  EXPECT_EQ(ups[0], dt);
}

TEST(CatalogTest, TargetLagToString) {
  EXPECT_EQ(TargetLag::Downstream().ToString(), "DOWNSTREAM");
  EXPECT_EQ(TargetLag::Of(kMicrosPerMinute).ToString(), "1m 0s");
}

TEST(CatalogTest, RefreshVersionLookups) {
  DynamicTableMeta meta;
  meta.refresh_versions[100] = 2;
  meta.refresh_versions[200] = 3;
  EXPECT_EQ(meta.VersionForRefresh(100).value(), 2u);
  EXPECT_FALSE(meta.VersionForRefresh(150).has_value());  // exact only
  EXPECT_EQ(meta.LatestRefreshAtOrBefore(150).value(), 100);
  EXPECT_EQ(meta.LatestRefreshAtOrBefore(200).value(), 200);
  EXPECT_FALSE(meta.LatestRefreshAtOrBefore(50).has_value());
}

TEST(TxnTest, CommitTimestampsStrictlyIncrease) {
  VirtualClock clock(100);
  TransactionManager txn(clock);
  HlcTimestamp a = txn.NextCommitTimestamp();
  HlcTimestamp b = txn.NextCommitTimestamp();
  clock.Advance(10);
  HlcTimestamp c = txn.NextCommitTimestamp();
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(c.logical, 0u);
}

TEST(TxnTest, MultiTableCommitIsAtomic) {
  VirtualClock clock(100);
  TransactionManager txn(clock);
  VersionedTable t1(OneCol()), t2(OneCol());
  ChangeSet c1 = t1.MakeInsertChanges({{Value::Int(1)}});
  ChangeSet c2 = t2.MakeInsertChanges({{Value::Int(2)}});
  auto ts = txn.CommitWrites({{&t1, c1}, {&t2, c2}});
  ASSERT_TRUE(ts.ok());
  // Same commit timestamp on both tables.
  EXPECT_EQ(t1.version(t1.latest_version()).commit_ts, ts.value());
  EXPECT_EQ(t2.version(t2.latest_version()).commit_ts, ts.value());
}

TEST(TxnTest, ValidationFailureAppliesNothing) {
  VirtualClock clock(100);
  TransactionManager txn(clock);
  VersionedTable t1(OneCol()), t2(OneCol());
  ChangeSet good = t1.MakeInsertChanges({{Value::Int(1)}});
  ChangeSet bad = {{ChangeAction::kDelete, 999, {Value::Int(9)}}};
  auto ts = txn.CommitWrites({{&t1, good}, {&t2, bad}});
  ASSERT_FALSE(ts.ok());
  EXPECT_EQ(ts.status().code(), StatusCode::kCorruption);
  // t1 must not have been touched despite its changes being valid.
  EXPECT_EQ(t1.latest_version(), 1u);
  EXPECT_EQ(t2.latest_version(), 1u);
}

TEST(TxnTest, LocksConflictAndAreReentrant) {
  VirtualClock clock(0);
  TransactionManager txn(clock);
  ASSERT_TRUE(txn.TryLock(7, /*holder=*/1).ok());
  EXPECT_TRUE(txn.TryLock(7, 1).ok());  // re-entrant for same holder
  Status conflict = txn.TryLock(7, 2);
  ASSERT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.code(), StatusCode::kLockConflict);
  txn.Unlock(7, 2);  // non-holder unlock is a no-op
  EXPECT_TRUE(txn.IsLocked(7));
  txn.Unlock(7, 1);
  EXPECT_FALSE(txn.IsLocked(7));
  EXPECT_TRUE(txn.TryLock(7, 2).ok());
}

TEST(TxnTest, SnapshotVisibility) {
  VirtualClock clock(100);
  TransactionManager txn(clock);
  VersionedTable t(OneCol());
  ASSERT_TRUE(txn.CommitWrites({{&t, t.MakeInsertChanges({{Value::Int(1)}})}}).ok());
  clock.Advance(50);
  ASSERT_TRUE(txn.CommitWrites({{&t, t.MakeInsertChanges({{Value::Int(2)}})}}).ok());
  // Snapshot at t=100 sees only the first commit; at t=150 both.
  EXPECT_EQ(t.ScanAt(t.ResolveVersionAt(TransactionManager::SnapshotAt(100))).size(), 1u);
  EXPECT_EQ(t.ScanAt(t.ResolveVersionAt(TransactionManager::SnapshotAt(150))).size(), 2u);
}

}  // namespace
}  // namespace dvs
