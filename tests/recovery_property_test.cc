// Crash-point property test: truncate the WAL after *every* record boundary
// (and at arbitrary mid-record offsets), recover, and verify that
//  (a) recovery always succeeds and replays exactly the intact prefix,
//  (b) recovery is deterministic (two recoveries of the same prefix are
//      byte-identical), and
//  (c) prefix recovery is compositional: applying the remaining records to
//      the truncated recovery reproduces the full recovery, which equals
//      the live pre-crash system byte-for-byte.
// Together these pin down the durability contract: a crash at any byte of
// the WAL loses only the suffix after the last intact record.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "persist/manager.h"
#include "persist/recover.h"
#include "sched/scheduler.h"

namespace dvs {
namespace persist {
namespace {

namespace fs = std::filesystem;

std::string UniqueDir(const std::string& tag) {
  static int counter = 0;
  std::string dir =
      (fs::temp_directory_path() /
       ("dvs_crashpoint_" + tag + "_" + std::to_string(::getpid()) + "_" +
        std::to_string(counter++)))
          .string();
  fs::remove_all(dir);
  return dir;
}

void Exec(DvsEngine& engine, const std::string& sql) {
  auto r = engine.Execute(sql);
  ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
}

std::string Fingerprint(RecoveredSystem& sys) {
  return EncodeSystemImage(CaptureSystemImage(*sys.engine, &sys.sched));
}

std::vector<Row> Rows(DvsEngine& engine, const std::string& sql) {
  auto r = engine.Query(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  return r.ok() ? r.value().rows : std::vector<Row>{};
}

/// Copies the persistence dir with the WAL truncated to `wal_bytes`.
std::string TruncatedCopy(const std::string& dir, uint64_t generation,
                          uint64_t wal_bytes, int* counter) {
  std::string copy = dir + "_cut" + std::to_string((*counter)++);
  fs::remove_all(copy);
  fs::copy(dir, copy);
  fs::resize_file(WalPath(copy, generation), wal_bytes);
  return copy;
}

TEST(CrashPointTest, EveryTruncationPointRecoversToAConsistentPrefix) {
  const std::string dir = UniqueDir("prefix");

  // A compact workload that still hits every WAL record type: DDL (create,
  // alter, drop/undrop), DML commits, INITIALIZE / INCREMENTAL / NO_DATA
  // refreshes, scheduler records, tick boundaries, and retention pruning.
  VirtualClock clock(0);
  DvsEngine engine(clock);
  ManagerOptions mopts;
  mopts.dir = dir;  // no checkpoint policy: one long WAL segment
  auto manager = Manager::Open(mopts).take();
  ASSERT_TRUE(manager->Attach(&engine).ok());

  SchedulerOptions sopts;
  sopts.persistence = manager.get();
  Scheduler sched(&engine, &clock, sopts);

  Exec(engine, "CREATE TABLE src (k INT, v INT) MIN_DATA_RETENTION = '3 minutes'");
  Exec(engine, "INSERT INTO src VALUES (1, 10), (2, 20)");
  Exec(engine,
       "CREATE DYNAMIC TABLE agg TARGET_LAG = '2 minutes' WAREHOUSE = wh "
       "MIN_DATA_RETENTION = '3 minutes' "
       "AS SELECT k, COUNT(*) AS c, SUM(v) AS s FROM src GROUP BY k");
  Exec(engine,
       "CREATE DYNAMIC TABLE wide TARGET_LAG = '4 minutes' WAREHOUSE = wh "
       "AS SELECT k, s FROM agg WHERE s > 0");
  for (int i = 1; i <= 5; ++i) {
    Exec(engine, "INSERT INTO src VALUES (" + std::to_string(i % 3) + ", " +
                     std::to_string(i * 7) + ")");
    if (i == 2) Exec(engine, "DELETE FROM src WHERE v = 10");
    if (i == 3) {
      Exec(engine, "ALTER DYNAMIC TABLE wide SET TARGET_LAG = '8 minutes'");
    }
    sched.RunUntil(2 * kCanonicalBasePeriod * i);
  }
  Exec(engine, "DROP TABLE src");
  Exec(engine, "UNDROP TABLE src");
  ASSERT_TRUE(manager->wal_status().ok()) << manager->wal_status().ToString();

  SchedulerPersistState live_state = sched.ExportState();
  std::string live_fp =
      EncodeSystemImage(CaptureSystemImage(engine, &live_state));
  const uint64_t generation = manager->generation();
  const Micros live_now = clock.Now();

  // Enumerate the record boundaries of the live WAL.
  auto wal = ReadWalSegment(WalPath(dir, generation));
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_FALSE(wal.value().torn_tail);
  const std::vector<FramedRecord>& records = wal.value().records;
  ASSERT_GT(records.size(), 30u) << "workload too small to be interesting";

  // Full recovery reproduces the live system byte-for-byte.
  {
    VirtualClock rclock(0);
    auto full = Recover(dir, &rclock);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    rclock.AdvanceTo(live_now);
    EXPECT_EQ(Fingerprint(full.value()), live_fp);
    EXPECT_EQ(full.value().wal_records_replayed, records.size());
  }

  int copies = 0;
  uint64_t header_end = 16;  // magic + version + seq
  for (size_t k = 0; k <= records.size(); ++k) {
    uint64_t cut = k == 0 ? header_end : records[k - 1].end_offset;
    std::string cdir = TruncatedCopy(dir, generation, cut, &copies);

    // (a) Recovery succeeds and replays exactly k records.
    VirtualClock c1(0);
    auto r1 = Recover(cdir, &c1);
    ASSERT_TRUE(r1.ok()) << "cut after record " << k << ": "
                         << r1.status().ToString();
    EXPECT_EQ(r1.value().wal_records_replayed, k);

    // (b) Determinism: a second recovery of the same prefix is identical.
    VirtualClock c2(0);
    auto r2 = Recover(cdir, &c2);
    ASSERT_TRUE(r2.ok());
    c2.AdvanceTo(c1.Now());
    EXPECT_EQ(Fingerprint(r1.value()), Fingerprint(r2.value()))
        << "nondeterministic recovery at prefix " << k;

    // (c) Compositionality: replaying the lost suffix onto the truncated
    // recovery lands exactly on the live state.
    RecoveredSystem sys = r1.take();
    for (size_t j = k; j < records.size(); ++j) {
      Status s = ApplyWalRecord(&sys, records[j].type, records[j].payload);
      ASSERT_TRUE(s.ok()) << "record " << j << " after prefix " << k << ": "
                          << s.ToString();
    }
    c1.AdvanceTo(live_now);
    EXPECT_EQ(Fingerprint(sys), live_fp) << "prefix " << k;

    fs::remove_all(cdir);
  }

  // Mid-record cuts behave like the previous boundary (torn tail dropped).
  for (size_t k : {size_t{1}, records.size() / 2, records.size() - 1}) {
    uint64_t cut = records[k].end_offset - 3;  // inside record k
    std::string cdir = TruncatedCopy(dir, generation, cut, &copies);
    VirtualClock c1(0);
    auto r1 = Recover(cdir, &c1);
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    EXPECT_EQ(r1.value().wal_records_replayed, k);
    EXPECT_TRUE(r1.value().wal_torn_tail);
    fs::remove_all(cdir);
  }

  fs::remove_all(dir);
}

// An incremental refresh journals a kCommit (storage merge) and a kRefresh
// (metadata transition) as two records. A WAL torn between them must not
// resurrect the merge alone: the recovered DT would hold the merged rows
// behind a stale frontier, and every subsequent refresh would re-derive the
// same delta and die on duplicate-row-id validation. Recovery defers DT
// commits until their kRefresh arrives, so the torn record is simply part
// of the lost suffix — and the recovered system keeps refreshing.
TEST(CrashPointTest, TornRefreshPairNeverResurrectsTheMerge) {
  const std::string dir = UniqueDir("tornpair");

  VirtualClock clock(0);
  DvsEngine engine(clock);
  auto manager = Manager::Open({dir}).take();
  ASSERT_TRUE(manager->Attach(&engine).ok());
  SchedulerOptions sopts;
  sopts.persistence = manager.get();
  Scheduler sched(&engine, &clock, sopts);

  Exec(engine, "CREATE TABLE src (k INT, v INT)");
  Exec(engine, "INSERT INTO src VALUES (1, 10), (2, 20)");
  Exec(engine,
       "CREATE DYNAMIC TABLE agg TARGET_LAG = '2 minutes' WAREHOUSE = wh "
       "AS SELECT k, COUNT(*) AS c, SUM(v) AS s FROM src GROUP BY k");
  for (int i = 1; i <= 4; ++i) {
    Exec(engine, "INSERT INTO src VALUES (" + std::to_string(i % 3) + ", " +
                     std::to_string(i * 7) + ")");
    sched.RunUntil(2 * kCanonicalBasePeriod * i);
  }
  ASSERT_TRUE(manager->wal_status().ok()) << manager->wal_status().ToString();

  const ObjectId agg_id = engine.catalog().Find("agg").value()->id;
  const uint64_t generation = manager->generation();
  auto wal = ReadWalSegment(WalPath(dir, generation));
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  const std::vector<FramedRecord>& records = wal.value().records;

  int pairs_cut = 0, copies = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].type != static_cast<uint8_t>(WalRecordType::kCommit)) {
      continue;
    }
    auto img = DecodeCommit(records[i].payload);
    ASSERT_TRUE(img.ok());
    if (img.value().tables.size() != 1 ||
        img.value().tables[0].object != agg_id) {
      continue;
    }
    ++pairs_cut;

    // Cut right between the pair: the merge record is intact, its kRefresh
    // is lost. The deferred merge must be invisible — byte-identical to
    // cutting before the kCommit as well.
    std::string cut_after =
        TruncatedCopy(dir, generation, records[i].end_offset, &copies);
    std::string cut_before =
        TruncatedCopy(dir, generation, records[i - 1].end_offset, &copies);
    VirtualClock ca(0), cb(0);
    auto ra = Recover(cut_after, &ca);
    auto rb = Recover(cut_before, &cb);
    ASSERT_TRUE(ra.ok()) << ra.status().ToString();
    ASSERT_TRUE(rb.ok()) << rb.status().ToString();
    EXPECT_EQ(ra.value().pending_dt_commits.size(), 1u);
    EXPECT_EQ(Fingerprint(ra.value()), Fingerprint(rb.value()))
        << "orphaned merge leaked into the recovered image (record " << i
        << ")";

    // The recovered system must be able to keep refreshing: churn the base
    // table and tick past the lost refresh — every refresh succeeds and the
    // DT converges to its defining query.
    RecoveredSystem sys = ra.take();
    Scheduler rsched(sys.engine.get(), &ca, {});
    rsched.ImportState(sys.sched);
    const size_t log_before = rsched.log().size();
    Exec(*sys.engine, "INSERT INTO src VALUES (1, 99)");
    rsched.RunUntil(sys.sched.last_run + 6 * kCanonicalBasePeriod);
    ASSERT_GT(rsched.log().size(), log_before);
    for (size_t j = log_before; j < rsched.log().size(); ++j) {
      EXPECT_FALSE(rsched.log()[j].failed)
          << "refresh failed after torn-pair recovery: "
          << rsched.log()[j].error;
    }
    std::vector<Row> dt = Rows(*sys.engine, "SELECT k, c, s FROM agg ORDER BY k");
    std::vector<Row> expect = Rows(
        *sys.engine,
        "SELECT k, COUNT(*) AS c, SUM(v) AS s FROM src GROUP BY k ORDER BY k");
    ASSERT_EQ(dt.size(), expect.size());
    for (size_t j = 0; j < dt.size(); ++j) {
      EXPECT_TRUE(RowsEqual(dt[j], expect[j])) << "row " << j;
    }

    fs::remove_all(cut_after);
    fs::remove_all(cut_before);
  }
  EXPECT_GE(pairs_cut, 2) << "workload produced no incremental DT merges";
  fs::remove_all(dir);
}

TEST(CrashPointTest, MissingWalFallsBackToCheckpointAlone) {
  const std::string dir = UniqueDir("nowal");
  VirtualClock clock(0);
  DvsEngine engine(clock);
  auto manager = Manager::Open({dir}).take();
  Exec(engine, "CREATE TABLE t (a INT)");
  Exec(engine, "INSERT INTO t VALUES (42)");
  ASSERT_TRUE(manager->Attach(&engine).ok());  // checkpoint includes t
  Exec(engine, "INSERT INTO t VALUES (43)");   // journaled in the WAL

  std::string ckpt_fp = [&] {
    // What the checkpoint alone should restore: the state at Attach.
    VirtualClock c(0);
    auto r = Recover(dir, &c);
    EXPECT_TRUE(r.ok());
    return r.ok() ? std::to_string(
                        r.value().engine->catalog().Find("t").value()
                            ->storage->ScanLatest().size())
                  : std::string();
  }();
  EXPECT_EQ(ckpt_fp, "2");  // both rows: WAL replayed

  // Deleting the WAL degrades to the checkpoint state instead of failing.
  fs::remove(WalPath(dir, manager->generation()));
  VirtualClock c(0);
  auto r = Recover(dir, &c);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(
      r.value().engine->catalog().Find("t").value()->storage->ScanLatest()
          .size(),
      1u);
  fs::remove_all(dir);
}

TEST(CrashPointTest, CorruptNewestCheckpointFallsBackToPrevious) {
  const std::string dir = UniqueDir("fallback");
  VirtualClock clock(0);
  DvsEngine engine(clock);
  ManagerOptions mopts;
  mopts.dir = dir;
  mopts.retain_checkpoints = 2;
  auto manager = Manager::Open(mopts).take();
  ASSERT_TRUE(manager->Attach(&engine).ok());
  Exec(engine, "CREATE TABLE t (a INT)");
  Exec(engine, "INSERT INTO t VALUES (1)");
  ASSERT_TRUE(manager->Checkpoint(nullptr).ok());
  Exec(engine, "INSERT INTO t VALUES (2)");

  // Corrupt the newest checkpoint: recovery falls back to the previous
  // generation and replays its full WAL, reaching the same logical state
  // minus the post-checkpoint suffix... which lives in the *old* WAL no
  // longer — so it recovers to generation 0's checkpoint + its WAL.
  uint64_t newest = manager->generation();
  fs::resize_file(CheckpointPath(dir, newest), 20);
  VirtualClock c(0);
  auto r = Recover(dir, &c);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().generation, newest - 1);
  // Generation 0's WAL contains the CREATE and first INSERT.
  EXPECT_EQ(
      r.value().engine->catalog().Find("t").value()->storage->ScanLatest()
          .size(),
      1u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace persist
}  // namespace dvs
