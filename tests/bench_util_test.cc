// Tests for bench/bench_util.h helpers. The StreamingHistogram feeds every
// percentile number the experiment binaries report (E19's read latencies,
// refresh-lag distributions), so its error bound — within half a sub-bucket,
// <= ~7% relative — is itself a tested contract, checked against exact
// sorted-sample percentiles.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"

namespace dvs {
namespace {

// Same rank convention as StreamingHistogram::Quantile (smallest value with
// cumulative count >= ceil(q*n)), so on cliff-shaped distributions the two
// differ only by bucket resolution, never by a rank-off-by-one.
double ExactQuantile(std::vector<int64_t> values, double q) {
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  size_t target = static_cast<size_t>(q * n + 0.999999);
  if (target == 0) target = 1;
  if (target > values.size()) target = values.size();
  return static_cast<double>(values[target - 1]);
}

TEST(StreamingHistogramTest, EmptyAndSingleValue) {
  bench::StreamingHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Mean(), 0.0);

  h.Add(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 42);
  EXPECT_NEAR(h.Quantile(0.0), 42.0, 3.0);
  EXPECT_NEAR(h.Quantile(1.0), 42.0, 3.0);
  EXPECT_EQ(h.Mean(), 42.0);
}

TEST(StreamingHistogramTest, SmallValuesAreExact) {
  bench::StreamingHistogram h;
  for (int64_t v = 0; v < 8; ++v) {
    for (int i = 0; i <= v; ++i) h.Add(v);  // value v appears v+1 times
  }
  // Values below 8 land in unit-width buckets: quantiles are exact.
  EXPECT_EQ(h.Quantile(0.99), 7.0);
  EXPECT_EQ(h.Quantile(0.01), 0.0);
  EXPECT_EQ(h.max(), 7);
}

TEST(StreamingHistogramTest, QuantilesTrackExactPercentiles) {
  Rng rng(1234);
  bench::StreamingHistogram h;
  std::vector<int64_t> values;
  // A skewed mix: mostly small, a heavy tail — the shape latencies have.
  for (int i = 0; i < 20000; ++i) {
    int64_t v = rng.Bernoulli(0.95) ? rng.Uniform(10, 2000)
                                    : rng.Uniform(2000, 500000);
    values.push_back(v);
    h.Add(v);
  }
  EXPECT_EQ(h.count(), values.size());
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const double exact = ExactQuantile(values, q);
    EXPECT_NEAR(h.Quantile(q), exact, 0.08 * exact) << "q=" << q;
  }
}

TEST(StreamingHistogramTest, MergeEqualsCombinedStream) {
  Rng rng(99);
  bench::StreamingHistogram a, b, combined;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.Uniform(0, 100000);
    (i % 2 ? a : b).Add(v);
    combined.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_EQ(a.Mean(), combined.Mean());
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_EQ(a.Quantile(q), combined.Quantile(q)) << "q=" << q;
  }
}

TEST(StreamingHistogramTest, BucketMathRoundTrips) {
  // Every bucket's midpoint maps back into that bucket, and a value's
  // midpoint is within half a sub-bucket width of the value.
  for (uint64_t v : {0ull, 1ull, 7ull, 8ull, 9ull, 63ull, 64ull, 1000ull,
                     123456789ull}) {
    const size_t idx = bench::StreamingHistogram::BucketIndex(v);
    const double mid = bench::StreamingHistogram::BucketMidpoint(idx);
    EXPECT_NEAR(mid, static_cast<double>(v),
                std::max(1.0, 0.07 * static_cast<double>(v)))
        << "v=" << v;
    EXPECT_EQ(bench::StreamingHistogram::BucketIndex(
                  static_cast<uint64_t>(mid)),
              idx)
        << "v=" << v;
  }
  // Negatives clamp to zero rather than indexing out of range.
  bench::StreamingHistogram h;
  h.Add(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

}  // namespace
}  // namespace dvs
