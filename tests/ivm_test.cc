// Tests for ivm/: differentiation rules against full recomputation,
// consolidation, insert-only analysis, incrementality analysis, and the
// state-reusing aggregation extension.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "ivm/differentiator.h"
#include "ivm/incrementality.h"
#include "ivm/state_reuse.h"

namespace dvs {
namespace {

// A two-version in-memory source: rows at I0 and rows at I1, with the delta
// derived automatically (by row id diff + content comparison).
class DeltaHarness {
 public:
  ObjectId AddTable(std::string name, Schema schema) {
    ObjectId id = next_id_++;
    tables_[id] = {std::move(name), std::move(schema), {}, {}, id * 100000};
    return id;
  }

  PlanPtr Scan(ObjectId id) const {
    const auto& t = tables_.at(id);
    return MakeScan(id, t.name, t.schema);
  }

  RowId Insert(ObjectId table, Row row, bool in_start) {
    auto& t = tables_.at(table);
    RowId rid = t.next_row_id++;
    if (in_start) t.start.push_back({rid, row});
    t.end.push_back({rid, std::move(row)});
    return rid;
  }

  void Delete(ObjectId table, RowId rid) {
    auto& t = tables_.at(table);
    t.end.erase(std::remove_if(t.end.begin(), t.end.end(),
                               [rid](const IdRow& r) { return r.id == rid; }),
                t.end.end());
  }

  void Update(ObjectId table, RowId rid, Row new_row) {
    Delete(table, rid);
    tables_.at(table).end.push_back({rid, std::move(new_row)});
  }

  DeltaContext Ctx() const {
    DeltaContext ctx;
    ctx.resolve_at_start = [this](ObjectId id) -> Result<std::vector<IdRow>> {
      return tables_.at(id).start;
    };
    ctx.resolve_at_end = [this](ObjectId id) -> Result<std::vector<IdRow>> {
      return tables_.at(id).end;
    };
    ctx.resolve_delta = [this](ObjectId id) -> Result<ChangeSet> {
      const auto& t = tables_.at(id);
      std::map<RowId, const Row*> start_rows, end_rows;
      for (const IdRow& r : t.start) start_rows[r.id] = &r.values;
      for (const IdRow& r : t.end) end_rows[r.id] = &r.values;
      ChangeSet cs;
      for (const auto& [rid, row] : start_rows) {
        auto it = end_rows.find(rid);
        if (it == end_rows.end() || !RowsEqual(*row, *it->second)) {
          cs.push_back({ChangeAction::kDelete, rid, *row});
        }
      }
      for (const auto& [rid, row] : end_rows) {
        auto it = start_rows.find(rid);
        if (it == start_rows.end() || !RowsEqual(*row, *it->second)) {
          cs.push_back({ChangeAction::kInsert, rid, *row});
        }
      }
      return cs;
    };
    return ctx;
  }

  /// Executes the plan at I0 or I1.
  std::vector<IdRow> Execute(const PlanPtr& plan, bool at_end) const {
    ExecContext ctx;
    DeltaContext d = Ctx();
    ctx.resolve_scan = at_end ? d.resolve_at_end : d.resolve_at_start;
    auto r = ExecutePlan(*plan, ctx);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.take() : std::vector<IdRow>{};
  }

  /// The golden check: applying Δ(plan) to the plan's I0 result must equal
  /// the plan's I1 result — identical row ids and contents.
  void CheckDelta(const PlanPtr& plan) {
    DeltaContext ctx = Ctx();
    auto delta = Differentiate(*plan, ctx);
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();

    std::map<RowId, Row> state;
    for (IdRow& r : Execute(plan, /*at_end=*/false)) {
      ASSERT_EQ(state.count(r.id), 0u) << "duplicate row id in base result";
      state[r.id] = std::move(r.values);
    }
    for (const ChangeRow& c : delta.value().changes) {
      if (c.action == ChangeAction::kDelete) {
        auto it = state.find(c.row_id);
        ASSERT_NE(it, state.end()) << "delete of missing row id " << c.row_id;
        EXPECT_TRUE(RowsEqual(it->second, c.values));
        state.erase(it);
      } else {
        ASSERT_EQ(state.count(c.row_id), 0u)
            << "insert of duplicate row id " << c.row_id;
        state[c.row_id] = c.values;
      }
    }
    std::map<RowId, Row> expected;
    for (IdRow& r : Execute(plan, /*at_end=*/true)) {
      expected[r.id] = std::move(r.values);
    }
    ASSERT_EQ(state.size(), expected.size());
    for (const auto& [rid, row] : expected) {
      auto it = state.find(rid);
      ASSERT_NE(it, state.end()) << "missing row id " << rid;
      EXPECT_TRUE(RowsEqual(it->second, row))
          << RowToString(it->second) << " vs " << RowToString(row);
    }
  }

 private:
  struct T {
    std::string name;
    Schema schema;
    std::vector<IdRow> start;
    std::vector<IdRow> end;
    RowId next_row_id;
  };
  std::map<ObjectId, T> tables_;
  ObjectId next_id_ = 1;
};

Schema KV() { return Schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}}); }

Row R(int64_t k, int64_t v) { return {Value::Int(k), Value::Int(v)}; }

TEST(DifferentiatorTest, ScanDeltaPassthrough) {
  DeltaHarness h;
  ObjectId t = h.AddTable("t", KV());
  h.Insert(t, R(1, 10), true);
  h.Insert(t, R(2, 20), false);  // inserted in the interval
  h.CheckDelta(h.Scan(t));
}

TEST(DifferentiatorTest, FilterDelta) {
  DeltaHarness h;
  ObjectId t = h.AddTable("t", KV());
  RowId r1 = h.Insert(t, R(1, 10), true);
  h.Insert(t, R(2, 3), false);   // filtered out
  h.Insert(t, R(3, 50), false);  // passes
  h.Delete(t, r1);               // delete a passing row
  auto plan = MakeFilter(h.Scan(t), Binary(BinaryOp::kGt, ColRef(1), LitInt(5)));
  h.CheckDelta(plan);
}

TEST(DifferentiatorTest, ProjectDelta) {
  DeltaHarness h;
  ObjectId t = h.AddTable("t", KV());
  RowId r1 = h.Insert(t, R(1, 10), true);
  h.Update(t, r1, R(1, 99));
  auto plan = MakeProject(h.Scan(t),
                          {ColRef(0), Binary(BinaryOp::kMul, ColRef(1), LitInt(3))},
                          {"k", "v3"});
  h.CheckDelta(plan);
}

TEST(DifferentiatorTest, InnerJoinBothSidesChange) {
  DeltaHarness h;
  ObjectId l = h.AddTable("l", KV());
  ObjectId r = h.AddTable("r", KV());
  RowId l1 = h.Insert(l, R(1, 10), true);
  h.Insert(l, R(2, 20), true);
  h.Insert(r, R(1, 100), true);
  // Interval: new left row matching existing right; new right rows matching
  // both old and new left; update and delete on both sides.
  h.Insert(l, R(3, 30), false);
  h.Insert(r, R(2, 200), false);
  h.Insert(r, R(3, 300), false);
  h.Update(l, l1, R(1, 11));
  auto plan = MakeJoin(JoinType::kInner, h.Scan(l), h.Scan(r),
                       {ColRef(0)}, {ColRef(0)});
  h.CheckDelta(plan);
}

TEST(DifferentiatorTest, InnerJoinSimultaneousDeleteBothSides) {
  DeltaHarness h;
  ObjectId l = h.AddTable("l", KV());
  ObjectId r = h.AddTable("r", KV());
  RowId l1 = h.Insert(l, R(1, 10), true);
  RowId r1 = h.Insert(r, R(1, 100), true);
  h.Delete(l, l1);
  h.Delete(r, r1);  // both sides of the joined row vanish: exactly 1 delete
  auto plan = MakeJoin(JoinType::kInner, h.Scan(l), h.Scan(r),
                       {ColRef(0)}, {ColRef(0)});
  h.CheckDelta(plan);
}

TEST(DifferentiatorTest, InnerJoinDeleteLeftInsertRightSameKey) {
  // The classic consolidation case: ΔQ⋈R1 emits a delete of a row that
  // never existed, Q0⋈ΔR emits its insert; they must cancel.
  DeltaHarness h;
  ObjectId l = h.AddTable("l", KV());
  ObjectId r = h.AddTable("r", KV());
  RowId l1 = h.Insert(l, R(1, 10), true);
  h.Delete(l, l1);
  h.Insert(r, R(1, 100), false);
  auto plan = MakeJoin(JoinType::kInner, h.Scan(l), h.Scan(r),
                       {ColRef(0)}, {ColRef(0)});
  DeltaContext ctx = h.Ctx();
  auto delta = Differentiate(*plan, ctx);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta.value().changes.empty());
  h.CheckDelta(plan);
}

TEST(DifferentiatorTest, LeftOuterJoinMatchFlips) {
  DeltaHarness h;
  ObjectId l = h.AddTable("l", KV());
  ObjectId r = h.AddTable("r", KV());
  h.Insert(l, R(1, 10), true);  // unmatched at I0 -> null-extended
  h.Insert(l, R(2, 20), true);
  RowId rm = h.Insert(r, R(2, 200), true);
  h.Insert(r, R(1, 100), false);  // row 1 becomes matched
  h.Delete(r, rm);                // row 2 becomes unmatched
  auto plan = MakeJoin(JoinType::kLeft, h.Scan(l), h.Scan(r),
                       {ColRef(0)}, {ColRef(0)});
  h.CheckDelta(plan);
}

TEST(DifferentiatorTest, FullOuterJoinWithNullKeys) {
  DeltaHarness h;
  ObjectId l = h.AddTable("l", KV());
  ObjectId r = h.AddTable("r", KV());
  h.Insert(l, {Value::Null(), Value::Int(1)}, true);   // never matches
  h.Insert(l, R(1, 10), true);
  h.Insert(r, {Value::Null(), Value::Int(2)}, false);  // new null-key row
  h.Insert(r, R(1, 100), false);
  auto plan = MakeJoin(JoinType::kFull, h.Scan(l), h.Scan(r),
                       {ColRef(0)}, {ColRef(0)});
  h.CheckDelta(plan);
}

TEST(DifferentiatorTest, UnionAllDelta) {
  DeltaHarness h;
  ObjectId a = h.AddTable("a", KV());
  ObjectId b = h.AddTable("b", KV());
  h.Insert(a, R(1, 1), true);
  h.Insert(b, R(1, 1), true);  // same values, different branch
  h.Insert(a, R(2, 2), false);
  auto plan = MakeUnionAll(h.Scan(a), h.Scan(b));
  h.CheckDelta(plan);
}

TEST(DifferentiatorTest, GroupedAggregateDelta) {
  DeltaHarness h;
  ObjectId t = h.AddTable("t", KV());
  RowId r1 = h.Insert(t, R(1, 10), true);
  h.Insert(t, R(1, 5), true);
  h.Insert(t, R(2, 7), true);
  h.Insert(t, R(1, 3), false);   // group 1 grows
  h.Delete(t, r1);               // and shrinks
  h.Insert(t, R(3, 100), false); // new group
  auto plan = MakeAggregate(
      h.Scan(t), {ColRef(0)},
      {Agg(AggFunc::kCountStar, {}), Agg(AggFunc::kSum, {ColRef(1)}),
       Agg(AggFunc::kMin, {ColRef(1)})},
      {"k", "n", "sv", "mn"});
  h.CheckDelta(plan);
}

TEST(DifferentiatorTest, GroupDisappearsWhenEmpty) {
  DeltaHarness h;
  ObjectId t = h.AddTable("t", KV());
  RowId r1 = h.Insert(t, R(1, 10), true);
  h.Insert(t, R(2, 20), true);
  h.Delete(t, r1);  // group 1 empties out
  auto plan = MakeAggregate(h.Scan(t), {ColRef(0)},
                            {Agg(AggFunc::kCountStar, {})}, {"k", "n"});
  DeltaContext ctx = h.Ctx();
  auto delta = Differentiate(*plan, ctx);
  ASSERT_TRUE(delta.ok());
  ChangeStats stats = CountChanges(delta.value().changes);
  EXPECT_EQ(stats.deletes, 1u);
  EXPECT_EQ(stats.inserts, 0u);
  h.CheckDelta(plan);
}

TEST(DifferentiatorTest, UnchangedGroupsProduceNoChanges) {
  DeltaHarness h;
  ObjectId t = h.AddTable("t", KV());
  h.Insert(t, R(1, 10), true);
  h.Insert(t, R(2, 20), true);
  h.Insert(t, R(2, 5), false);  // only group 2 changes
  auto plan = MakeAggregate(h.Scan(t), {ColRef(0)},
                            {Agg(AggFunc::kSum, {ColRef(1)})}, {"k", "sv"});
  DeltaContext ctx = h.Ctx();
  auto delta = Differentiate(*plan, ctx);
  ASSERT_TRUE(delta.ok());
  for (const ChangeRow& c : delta.value().changes) {
    EXPECT_EQ(c.values[0].int_value(), 2) << "group 1 must not be touched";
  }
  h.CheckDelta(plan);
}

TEST(DifferentiatorTest, DistinctDelta) {
  DeltaHarness h;
  ObjectId t = h.AddTable("t", KV());
  RowId r1 = h.Insert(t, R(1, 1), true);
  h.Insert(t, R(1, 1), true);  // duplicate
  h.Delete(t, r1);             // one copy remains: distinct output unchanged
  h.Insert(t, R(2, 2), false);
  auto plan = MakeDistinct(MakeProject(h.Scan(t), {ColRef(0)}, {"k"}));
  DeltaContext ctx = h.Ctx();
  auto delta = Differentiate(*plan, ctx);
  ASSERT_TRUE(delta.ok());
  ChangeStats stats = CountChanges(delta.value().changes);
  EXPECT_EQ(stats.deletes, 0u);  // value 1 still present
  EXPECT_EQ(stats.inserts, 1u);  // value 2 appears
  h.CheckDelta(plan);
}

TEST(DifferentiatorTest, WindowDeltaRecomputesOnlyAffectedPartitions) {
  DeltaHarness h;
  ObjectId t = h.AddTable("t", Schema({{"grp", DataType::kString},
                                       {"v", DataType::kInt64}}));
  h.Insert(t, {Value::String("a"), Value::Int(10)}, true);
  h.Insert(t, {Value::String("a"), Value::Int(20)}, true);
  h.Insert(t, {Value::String("b"), Value::Int(5)}, true);
  h.Insert(t, {Value::String("a"), Value::Int(15)}, false);  // only 'a' moves
  auto plan = MakeWindow(h.Scan(t), {ColRef(0)}, {{ColRef(1), true}},
                         {Win(WindowFunc::kRowNumber, {})}, {"rn"});
  DeltaContext ctx = h.Ctx();
  auto delta = Differentiate(*plan, ctx);
  ASSERT_TRUE(delta.ok());
  for (const ChangeRow& c : delta.value().changes) {
    EXPECT_EQ(c.values[0].string_value(), "a");
  }
  h.CheckDelta(plan);
}

TEST(DifferentiatorTest, FlattenDelta) {
  DeltaHarness h;
  ObjectId t = h.AddTable("t", Schema({{"k", DataType::kInt64},
                                       {"tags", DataType::kArray}}));
  h.Insert(t, {Value::Int(1),
               Value::MakeArray({Value::Int(7), Value::Int(8)})}, true);
  h.Insert(t, {Value::Int(2), Value::MakeArray({Value::Int(9)})}, false);
  auto plan = MakeFlatten(h.Scan(t), ColRef(1), "tag");
  h.CheckDelta(plan);
}

TEST(DifferentiatorTest, DeepPlanJoinOfAggregates) {
  DeltaHarness h;
  ObjectId a = h.AddTable("a", KV());
  ObjectId b = h.AddTable("b", KV());
  for (int i = 0; i < 10; ++i) {
    h.Insert(a, R(i % 3, i), true);
    h.Insert(b, R(i % 3, i * 2), true);
  }
  h.Insert(a, R(0, 50), false);
  h.Insert(b, R(7, 70), false);
  auto agg_a = MakeAggregate(h.Scan(a), {ColRef(0)},
                             {Agg(AggFunc::kSum, {ColRef(1)})}, {"k", "sa"});
  auto agg_b = MakeAggregate(h.Scan(b), {ColRef(0)},
                             {Agg(AggFunc::kSum, {ColRef(1)})}, {"k", "sb"});
  auto plan = MakeJoin(JoinType::kFull, agg_a, agg_b, {ColRef(0)}, {ColRef(0)});
  h.CheckDelta(plan);
}

TEST(DifferentiatorTest, OrderByNotDifferentiable) {
  DeltaHarness h;
  ObjectId t = h.AddTable("t", KV());
  h.Insert(t, R(1, 1), false);
  auto plan = MakeOrderBy(h.Scan(t), {{ColRef(0), true}});
  DeltaContext ctx = h.Ctx();
  auto delta = Differentiate(*plan, ctx);
  ASSERT_FALSE(delta.ok());
  EXPECT_EQ(delta.status().code(), StatusCode::kUnsupported);
}

TEST(DifferentiatorTest, EmptyDeltaShortCircuits) {
  DeltaHarness h;
  ObjectId t = h.AddTable("t", KV());
  h.Insert(t, R(1, 1), true);  // unchanged over the interval
  auto plan = MakeAggregate(h.Scan(t), {ColRef(0)},
                            {Agg(AggFunc::kCountStar, {})}, {"k", "n"});
  DeltaContext ctx = h.Ctx();
  auto delta = Differentiate(*plan, ctx);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta.value().changes.empty());
  EXPECT_EQ(ctx.rows_processed, 0u);  // no snapshots were materialized
}

// ---- Consolidation ----

TEST(ConsolidateTest, CancelsEqualPairs) {
  ChangeSet cs = {
      {ChangeAction::kDelete, 1, R(1, 10)},
      {ChangeAction::kInsert, 1, R(1, 10)},  // identical: cancels
      {ChangeAction::kDelete, 2, R(2, 20)},
      {ChangeAction::kInsert, 2, R(2, 99)},  // update: survives
      {ChangeAction::kInsert, 3, R(3, 30)},
  };
  ChangeSet net = Consolidate(std::move(cs));
  EXPECT_EQ(net.size(), 3u);
}

TEST(ConsolidateTest, PairwiseNotGreedy) {
  // Two identical deletes and one identical insert: only one pair cancels.
  ChangeSet cs = {
      {ChangeAction::kDelete, 1, R(1, 10)},
      {ChangeAction::kDelete, 1, R(1, 10)},
      {ChangeAction::kInsert, 1, R(1, 10)},
  };
  ChangeSet net = Consolidate(std::move(cs));
  EXPECT_EQ(net.size(), 1u);
  EXPECT_EQ(net[0].action, ChangeAction::kDelete);
}

TEST(ConsolidateTest, SkippabilityAnalysis) {
  DeltaHarness h;
  ObjectId t = h.AddTable("t", KV());
  EXPECT_TRUE(ConsolidationSkippable(
      *MakeFilter(h.Scan(t), Binary(BinaryOp::kGt, ColRef(1), LitInt(0)))));
  EXPECT_TRUE(ConsolidationSkippable(*MakeJoin(
      JoinType::kInner, h.Scan(t), h.Scan(t), {ColRef(0)}, {ColRef(0)})));
  EXPECT_FALSE(ConsolidationSkippable(*MakeJoin(
      JoinType::kLeft, h.Scan(t), h.Scan(t), {ColRef(0)}, {ColRef(0)})));
  EXPECT_FALSE(ConsolidationSkippable(*MakeDistinct(h.Scan(t))));
  EXPECT_FALSE(ConsolidationSkippable(*MakeAggregate(
      h.Scan(t), {ColRef(0)}, {Agg(AggFunc::kCountStar, {})}, {"k", "n"})));
}

// ---- Incrementality analysis ----

TEST(IncrementalityTest, SupportedAndUnsupportedShapes) {
  DeltaHarness h;
  ObjectId t = h.AddTable("t", KV());
  EXPECT_TRUE(AnalyzeIncrementality(*h.Scan(t)).incremental);
  EXPECT_TRUE(AnalyzeIncrementality(*MakeAggregate(
                  h.Scan(t), {ColRef(0)}, {Agg(AggFunc::kCountStar, {})},
                  {"k", "n"})).incremental);
  EXPECT_FALSE(AnalyzeIncrementality(*MakeAggregate(
                   h.Scan(t), {}, {Agg(AggFunc::kCountStar, {})}, {"n"}))
                   .incremental);
  EXPECT_FALSE(AnalyzeIncrementality(*MakeOrderBy(h.Scan(t), {{ColRef(0), true}}))
                   .incremental);
  EXPECT_FALSE(AnalyzeIncrementality(*MakeLimit(h.Scan(t), 5)).incremental);
  EXPECT_FALSE(AnalyzeIncrementality(*MakeProject(
                   h.Scan(t), {Func("random", {})}, {"r"})).incremental);
  EXPECT_TRUE(AnalyzeIncrementality(*MakeProject(
                  h.Scan(t), {Func("current_timestamp", {})}, {"ts"}))
                  .incremental);
}

// ---- State-reusing aggregation (E12 extension) ----

TEST(StateReuseTest, ApplicabilityRules) {
  DeltaHarness h;
  ObjectId t = h.AddTable("t", KV());
  std::string why;
  EXPECT_TRUE(StateReuseApplicable(
      *MakeAggregate(h.Scan(t), {ColRef(0)},
                     {Agg(AggFunc::kCountStar, {}), Agg(AggFunc::kSum, {ColRef(1)})},
                     {"k", "n", "sv"}),
      &why));
  // MIN needs recompute.
  EXPECT_FALSE(StateReuseApplicable(
      *MakeAggregate(h.Scan(t), {ColRef(0)},
                     {Agg(AggFunc::kCountStar, {}), Agg(AggFunc::kMin, {ColRef(1)})},
                     {"k", "n", "mn"}),
      &why));
  // COUNT(*) required.
  EXPECT_FALSE(StateReuseApplicable(
      *MakeAggregate(h.Scan(t), {ColRef(0)}, {Agg(AggFunc::kSum, {ColRef(1)})},
                     {"k", "sv"}),
      &why));
  // Scalar aggregation excluded.
  EXPECT_FALSE(StateReuseApplicable(
      *MakeAggregate(h.Scan(t), {}, {Agg(AggFunc::kCountStar, {})}, {"n"}),
      &why));
}

TEST(StateReuseTest, MatchesRecomputeDerivative) {
  DeltaHarness h;
  ObjectId t = h.AddTable("t", KV());
  RowId r1 = h.Insert(t, R(1, 10), true);
  h.Insert(t, R(1, 5), true);
  h.Insert(t, R(2, 7), true);
  h.Insert(t, R(3, 100), false);  // new group
  h.Insert(t, R(1, 2), false);
  h.Delete(t, r1);
  auto plan = MakeAggregate(
      h.Scan(t), {ColRef(0)},
      {Agg(AggFunc::kCountStar, {}), Agg(AggFunc::kSum, {ColRef(1)}),
       Agg(AggFunc::kCountIf,
           {Binary(BinaryOp::kGt, ColRef(1), LitInt(4))})},
      {"k", "n", "sv", "big"});

  std::vector<IdRow> stored = h.Execute(plan, /*at_end=*/false);
  DeltaContext ctx = h.Ctx();
  auto sr = DifferentiateAggregateWithState(*plan, stored, ctx);
  ASSERT_TRUE(sr.ok()) << sr.status().ToString();
  ASSERT_TRUE(sr.value().applicable) << sr.value().reason;

  DeltaContext ctx2 = h.Ctx();
  auto full = Differentiate(*plan, ctx2);
  ASSERT_TRUE(full.ok());

  auto render = [](ChangeSet cs) {
    std::vector<std::string> out;
    for (const ChangeRow& c : cs) {
      out.push_back(std::string(ChangeActionName(c.action)) + " " +
                    std::to_string(c.row_id) + " " + RowToString(c.values));
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(render(sr.value().changes), render(full.value().changes));
}

TEST(StateReuseTest, GroupEmptyAndGroupBorn) {
  DeltaHarness h;
  ObjectId t = h.AddTable("t", KV());
  RowId r1 = h.Insert(t, R(1, 10), true);
  h.Delete(t, r1);               // group 1 dies
  h.Insert(t, R(9, 90), false);  // group 9 born
  auto plan = MakeAggregate(h.Scan(t), {ColRef(0)},
                            {Agg(AggFunc::kCountStar, {}),
                             Agg(AggFunc::kSum, {ColRef(1)})},
                            {"k", "n", "sv"});
  std::vector<IdRow> stored = h.Execute(plan, false);
  DeltaContext ctx = h.Ctx();
  auto sr = DifferentiateAggregateWithState(*plan, stored, ctx);
  ASSERT_TRUE(sr.ok());
  ASSERT_TRUE(sr.value().applicable);
  ChangeStats stats = CountChanges(sr.value().changes);
  EXPECT_EQ(stats.deletes, 1u);
  EXPECT_EQ(stats.inserts, 1u);
}

TEST(StateReuseTest, BailsOnNullSumInput) {
  DeltaHarness h;
  ObjectId t = h.AddTable("t", KV());
  h.Insert(t, {Value::Int(1), Value::Null()}, false);
  auto plan = MakeAggregate(h.Scan(t), {ColRef(0)},
                            {Agg(AggFunc::kCountStar, {}),
                             Agg(AggFunc::kSum, {ColRef(1)})},
                            {"k", "n", "sv"});
  DeltaContext ctx = h.Ctx();
  auto sr = DifferentiateAggregateWithState(*plan, {}, ctx);
  ASSERT_TRUE(sr.ok());
  EXPECT_FALSE(sr.value().applicable);  // graceful fallback, not corruption
}

}  // namespace
}  // namespace dvs
