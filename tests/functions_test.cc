// Scalar-function library sweep: every registered builtin gets behavioral
// coverage, including NULL handling, error cases, and volatility metadata.

#include <gtest/gtest.h>

#include "exec/evaluator.h"

namespace dvs {
namespace {

Result<Value> Call(const std::string& fn, std::vector<Value> args,
                   Micros now = 0) {
  std::vector<ExprPtr> children;
  for (Value& v : args) children.push_back(Lit(std::move(v)));
  EvalContext ctx;
  ctx.current_time = now;
  return Eval(*Func(fn, std::move(children)), {}, ctx);
}

TEST(FunctionsTest, NumericFunctions) {
  EXPECT_EQ(Call("abs", {Value::Int(-7)}).value().int_value(), 7);
  EXPECT_DOUBLE_EQ(Call("abs", {Value::Double(-2.5)}).value().double_value(), 2.5);
  EXPECT_EQ(Call("floor", {Value::Double(2.9)}).value().int_value(), 2);
  EXPECT_EQ(Call("ceil", {Value::Double(2.1)}).value().int_value(), 3);
  EXPECT_EQ(Call("round", {Value::Double(2.5)}).value().int_value(), 3);
  EXPECT_DOUBLE_EQ(Call("sqrt", {Value::Int(9)}).value().double_value(), 3.0);
  EXPECT_DOUBLE_EQ(Call("power", {Value::Int(2), Value::Int(10)})
                       .value().double_value(), 1024.0);
  EXPECT_EQ(Call("sign", {Value::Int(-3)}).value().int_value(), -1);
  EXPECT_EQ(Call("sign", {Value::Int(0)}).value().int_value(), 0);
  EXPECT_EQ(Call("mod", {Value::Int(7), Value::Int(3)}).value().int_value(), 1);
}

TEST(FunctionsTest, NumericErrorCases) {
  EXPECT_EQ(Call("sqrt", {Value::Int(-1)}).status().code(),
            StatusCode::kUserError);
  EXPECT_EQ(Call("ln", {Value::Int(0)}).status().code(),
            StatusCode::kUserError);
  EXPECT_EQ(Call("mod", {Value::Int(1), Value::Int(0)}).status().code(),
            StatusCode::kUserError);
  EXPECT_EQ(Call("abs", {Value::String("x")}).status().code(),
            StatusCode::kUserError);
}

TEST(FunctionsTest, StringFunctions) {
  EXPECT_EQ(Call("length", {Value::String("hello")}).value().int_value(), 5);
  EXPECT_EQ(Call("upper", {Value::String("aBc")}).value().string_value(), "ABC");
  EXPECT_EQ(Call("lower", {Value::String("aBc")}).value().string_value(), "abc");
  EXPECT_EQ(Call("substr", {Value::String("dynamic"), Value::Int(1), Value::Int(3)})
                .value().string_value(), "dyn");
  EXPECT_EQ(Call("substr", {Value::String("dynamic"), Value::Int(5)})
                .value().string_value(), "mic");
  EXPECT_EQ(Call("substr", {Value::String("abc"), Value::Int(99)})
                .value().string_value(), "");
  EXPECT_EQ(Call("concat", {Value::String("a"), Value::Int(1), Value::String("b")})
                .value().string_value(), "a1b");
}

TEST(FunctionsTest, ConditionalFunctions) {
  EXPECT_EQ(Call("coalesce", {Value::Null(), Value::Null(), Value::Int(3)})
                .value().int_value(), 3);
  EXPECT_TRUE(Call("coalesce", {Value::Null()}).value().is_null());
  EXPECT_EQ(Call("iff", {Value::Bool(true), Value::Int(1), Value::Int(2)})
                .value().int_value(), 1);
  EXPECT_EQ(Call("iff", {Value::Bool(false), Value::Int(1), Value::Int(2)})
                .value().int_value(), 2);
  EXPECT_TRUE(Call("nullif", {Value::Int(5), Value::Int(5)}).value().is_null());
  EXPECT_EQ(Call("nullif", {Value::Int(5), Value::Int(6)}).value().int_value(), 5);
  EXPECT_EQ(Call("greatest", {Value::Int(1), Value::Int(9), Value::Int(4)})
                .value().int_value(), 9);
  EXPECT_EQ(Call("least", {Value::Int(1), Value::Int(9), Value::Int(4)})
                .value().int_value(), 1);
  EXPECT_TRUE(Call("greatest", {Value::Int(1), Value::Null()}).value().is_null());
}

TEST(FunctionsTest, TimestampFunctions) {
  Micros t = 5 * kMicrosPerHour + 42 * kMicrosPerMinute + 7 * kMicrosPerSecond;
  EXPECT_EQ(Call("date_trunc", {Value::String("minute"), Value::Timestamp(t)})
                .value().timestamp_value(),
            5 * kMicrosPerHour + 42 * kMicrosPerMinute);
  EXPECT_EQ(Call("date_trunc", {Value::String("day"), Value::Timestamp(t)})
                .value().timestamp_value(), 0);
  EXPECT_EQ(Call("date_trunc", {Value::String("fortnight"), Value::Timestamp(t)})
                .status().code(), StatusCode::kUserError);
  EXPECT_EQ(Call("to_timestamp", {Value::Int(60)}).value().timestamp_value(),
            kMicrosPerMinute);
  EXPECT_EQ(Call("epoch_seconds", {Value::Timestamp(kMicrosPerMinute)})
                .value().int_value(), 60);
  EXPECT_EQ(Call("timestamp_diff",
                 {Value::Timestamp(1000), Value::Timestamp(400)})
                .value().int_value(), 600);
  EXPECT_EQ(Call("current_timestamp", {}, /*now=*/12345)
                .value().timestamp_value(), 12345);
}

TEST(FunctionsTest, ArrayFunctions) {
  Value arr = Call("array_construct",
                   {Value::Int(1), Value::String("x")}).value();
  ASSERT_EQ(arr.type(), DataType::kArray);
  EXPECT_EQ(Call("array_size", {arr}).value().int_value(), 2);
  EXPECT_EQ(Call("get", {arr, Value::Int(1)}).value().string_value(), "x");
  EXPECT_TRUE(Call("get", {arr, Value::Int(9)}).value().is_null());
  EXPECT_TRUE(Call("get", {arr, Value::Int(-1)}).value().is_null());
  Value empty = Call("array_construct", {}).value();
  EXPECT_EQ(Call("array_size", {empty}).value().int_value(), 0);
}

TEST(FunctionsTest, NullPropagationAcrossLibrary) {
  for (const char* fn : {"abs", "floor", "length", "upper", "array_size"}) {
    auto r = Call(fn, {Value::Null()});
    ASSERT_TRUE(r.ok()) << fn;
    EXPECT_TRUE(r.value().is_null()) << fn;
  }
}

TEST(FunctionsTest, VolatilityMetadata) {
  auto& reg = FunctionRegistry::Global();
  EXPECT_EQ(reg.Find("abs")->volatility, Volatility::kImmutable);
  EXPECT_EQ(reg.Find("current_timestamp")->volatility, Volatility::kContext);
  EXPECT_EQ(reg.Find("random")->volatility, Volatility::kVolatile);
  EXPECT_EQ(reg.Find("uniform")->volatility, Volatility::kVolatile);
  EXPECT_EQ(reg.Find("ABS"), reg.Find("abs"));  // case-insensitive
  EXPECT_EQ(reg.Find("no_such_function"), nullptr);
}

TEST(FunctionsTest, VolatileFunctionsNeedEntropy) {
  EXPECT_EQ(Call("random", {}).status().code(), StatusCode::kUserError);
  Rng rng(1);
  EvalContext ctx;
  ctx.rng = &rng;
  auto r = Eval(*Func("uniform", {LitInt(5), LitInt(5)}), {}, ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().int_value(), 5);
}

TEST(FunctionsTest, UserRegisteredFunction) {
  FunctionRegistry::Global().Register(
      {"triple", Volatility::kImmutable, 1, 1,
       [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
         if (args[0].is_null()) return Value::Null();
         return Value::Int(args[0].AsInt() * 3);
       }});
  EXPECT_EQ(Call("triple", {Value::Int(4)}).value().int_value(), 12);
}

}  // namespace
}  // namespace dvs
