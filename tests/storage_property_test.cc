// Property-based storage tests (TEST_P sweeps): for random operation
// sequences across partition-size configurations, the versioned table must
// (a) reproduce exactly the model's contents at every historical version,
// and (b) produce change scans equal to the brute-force diff of the two
// model states — for every version pair, not just adjacent ones.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "storage/versioned_table.h"

namespace dvs {
namespace {

struct StorageParams {
  uint64_t seed;
  size_t max_partition_rows;
};

class StoragePropertyTest : public ::testing::TestWithParam<StorageParams> {};

Row R(int64_t a, int64_t b) { return {Value::Int(a), Value::Int(b)}; }

TEST_P(StoragePropertyTest, MatchesReferenceModel) {
  const StorageParams params = GetParam();
  Rng rng(params.seed);
  VersionedTable table(Schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}}),
                       params.max_partition_rows);

  // Reference model: version -> (row id -> row).
  using Model = std::map<RowId, Row>;
  std::vector<Model> history = {{}};  // version 1 = empty
  Model model;
  Micros ts = 10;

  for (int step = 0; step < 40; ++step) {
    ChangeSet changes;
    double p = rng.NextDouble();
    if (p < 0.45 || model.empty()) {
      // Insert batch.
      int n = static_cast<int>(rng.Uniform(1, 6));
      std::vector<Row> rows;
      for (int i = 0; i < n; ++i) {
        rows.push_back(R(rng.Uniform(0, 50), rng.Uniform(0, 1000)));
      }
      changes = table.MakeInsertChanges(std::move(rows));
    } else if (p < 0.65) {
      // Delete a few random existing rows.
      int n = static_cast<int>(rng.Uniform(1, 3));
      auto it = model.begin();
      std::advance(it, rng.Uniform(0, static_cast<int64_t>(model.size()) - 1));
      for (int i = 0; i < n && it != model.end(); ++i, ++it) {
        changes.push_back({ChangeAction::kDelete, it->first, it->second});
      }
    } else if (p < 0.85) {
      // Update one row (delete + insert, same id).
      auto it = model.begin();
      std::advance(it, rng.Uniform(0, static_cast<int64_t>(model.size()) - 1));
      changes.push_back({ChangeAction::kDelete, it->first, it->second});
      changes.push_back({ChangeAction::kInsert, it->first,
                         R(it->second[0].int_value(), rng.Uniform(0, 1000))});
    } else if (p < 0.95) {
      // Maintenance: recluster (data-equivalent).
      table.Recluster({ts += 10, 0});
      history.push_back(model);
      continue;
    } else {
      table.CommitNoOp({ts += 10, 0});
      history.push_back(model);
      continue;
    }

    ASSERT_TRUE(table.ApplyChanges(changes, {ts += 10, 0}).ok());
    for (const ChangeRow& c : changes) {
      if (c.action == ChangeAction::kDelete) {
        model.erase(c.row_id);
      } else {
        model[c.row_id] = c.values;
      }
    }
    history.push_back(model);
  }

  // (a) Every historical version matches the model.
  ASSERT_EQ(table.version_count(), history.size());
  for (VersionId v = 1; v <= history.size(); ++v) {
    const Model& expected = history[v - 1];
    Model actual;
    for (const IdRow& r : table.ScanAt(v)) actual[r.id] = r.values;
    ASSERT_EQ(actual.size(), expected.size()) << "version " << v;
    for (const auto& [rid, row] : expected) {
      auto it = actual.find(rid);
      ASSERT_NE(it, actual.end()) << "version " << v << " row " << rid;
      EXPECT_TRUE(RowsEqual(it->second, row));
    }
    EXPECT_EQ(table.RowCountAt(v), expected.size());
  }

  // (b) Change scans between sampled version pairs equal the model diff.
  for (int trial = 0; trial < 30; ++trial) {
    VersionId from = static_cast<VersionId>(
        rng.Uniform(1, static_cast<int64_t>(history.size())));
    VersionId to = static_cast<VersionId>(
        rng.Uniform(static_cast<int64_t>(from),
                    static_cast<int64_t>(history.size())));
    auto scan = table.ScanChanges(from, to);
    ASSERT_TRUE(scan.ok());
    // Apply the scan to the `from` model; must yield the `to` model.
    Model state = history[from - 1];
    for (const ChangeRow& c : scan.value()) {
      if (c.action == ChangeAction::kDelete) {
        auto it = state.find(c.row_id);
        ASSERT_NE(it, state.end());
        ASSERT_TRUE(RowsEqual(it->second, c.values));
        state.erase(it);
      } else {
        ASSERT_EQ(state.count(c.row_id), 0u);
        state[c.row_id] = c.values;
      }
    }
    const Model& expected = history[to - 1];
    ASSERT_EQ(state.size(), expected.size())
        << "scan " << from << " -> " << to;
    for (const auto& [rid, row] : expected) {
      ASSERT_TRUE(state.count(rid));
      EXPECT_TRUE(RowsEqual(state[rid], row));
    }
  }
}

std::vector<StorageParams> StorageSweep() {
  std::vector<StorageParams> out;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    for (size_t part : {1u, 3u, 64u}) {
      out.push_back({seed, part});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StoragePropertyTest, ::testing::ValuesIn(StorageSweep()),
    [](const ::testing::TestParamInfo<StorageParams>& info) {
      return "seed" + std::to_string(info.param.seed) + "_part" +
             std::to_string(info.param.max_partition_rows);
    });

}  // namespace
}  // namespace dvs
