// Tests for exec/: evaluator semantics and full plan execution.

#include <gtest/gtest.h>

#include <map>

#include "exec/executor.h"
#include "exec/row_id.h"

namespace dvs {
namespace {

// A tiny in-memory "database" for executor tests.
class TestDb {
 public:
  ObjectId AddTable(std::string name, Schema schema,
                    std::vector<Row> rows) {
    ObjectId id = next_id_++;
    std::vector<IdRow> idrows;
    RowId rid = id * 1000;
    for (Row& r : rows) idrows.push_back({rid++, std::move(r)});
    tables_[id] = {std::move(name), std::move(schema), std::move(idrows)};
    return id;
  }

  PlanPtr Scan(ObjectId id) const {
    const auto& t = tables_.at(id);
    return MakeScan(id, t.name, t.schema);
  }

  ExecContext Ctx() const {
    ExecContext ctx;
    ctx.resolve_scan = [this](ObjectId id) -> Result<std::vector<IdRow>> {
      auto it = tables_.find(id);
      if (it == tables_.end()) return NotFound("no table");
      return it->second.rows;
    };
    return ctx;
  }

 private:
  struct T {
    std::string name;
    Schema schema;
    std::vector<IdRow> rows;
  };
  std::map<ObjectId, T> tables_;
  ObjectId next_id_ = 1;
};

Schema OrdersSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"customer", DataType::kString},
                 {"amount", DataType::kInt64}});
}

TestDb MakeOrdersDb(ObjectId* orders_out) {
  TestDb db;
  *orders_out = db.AddTable("orders", OrdersSchema(),
                            {
                                {Value::Int(1), Value::String("alice"), Value::Int(10)},
                                {Value::Int(2), Value::String("bob"), Value::Int(20)},
                                {Value::Int(3), Value::String("alice"), Value::Int(30)},
                                {Value::Int(4), Value::String("cara"), Value::Int(5)},
                            });
  return db;
}

// ---- Evaluator ----

TEST(EvaluatorTest, ArithmeticIntAndDouble) {
  EvalContext ctx;
  Row row;
  EXPECT_EQ(Eval(*Binary(BinaryOp::kAdd, LitInt(2), LitInt(3)), row, ctx)
                .value().int_value(), 5);
  EXPECT_EQ(Eval(*Binary(BinaryOp::kMul, LitInt(2), LitDouble(1.5)), row, ctx)
                .value().double_value(), 3.0);
  EXPECT_EQ(Eval(*Binary(BinaryOp::kDiv, LitInt(7), LitInt(2)), row, ctx)
                .value().int_value(), 3);
}

TEST(EvaluatorTest, DivisionByZeroIsUserError) {
  EvalContext ctx;
  Row row;
  auto r = Eval(*Binary(BinaryOp::kDiv, LitInt(1), LitInt(0)), row, ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUserError);
}

TEST(EvaluatorTest, NullPropagation) {
  EvalContext ctx;
  Row row;
  EXPECT_TRUE(Eval(*Binary(BinaryOp::kAdd, LitNull(), LitInt(3)), row, ctx)
                  .value().is_null());
  EXPECT_TRUE(Eval(*Binary(BinaryOp::kEq, LitNull(), LitNull()), row, ctx)
                  .value().is_null());
}

TEST(EvaluatorTest, ThreeValuedLogic) {
  EvalContext ctx;
  Row row;
  // FALSE AND NULL = FALSE (short circuit), TRUE OR NULL = TRUE.
  EXPECT_EQ(Eval(*Binary(BinaryOp::kAnd, LitBool(false), LitNull()), row, ctx)
                .value().bool_value(), false);
  EXPECT_EQ(Eval(*Binary(BinaryOp::kOr, LitBool(true), LitNull()), row, ctx)
                .value().bool_value(), true);
  // TRUE AND NULL = NULL.
  EXPECT_TRUE(Eval(*Binary(BinaryOp::kAnd, LitBool(true), LitNull()), row, ctx)
                  .value().is_null());
}

TEST(EvaluatorTest, IsNullOperators) {
  EvalContext ctx;
  Row row;
  EXPECT_TRUE(Eval(*Unary(UnaryOp::kIsNull, LitNull()), row, ctx)
                  .value().bool_value());
  EXPECT_TRUE(Eval(*Unary(UnaryOp::kIsNotNull, LitInt(1)), row, ctx)
                  .value().bool_value());
}

TEST(EvaluatorTest, TimestampArithmetic) {
  EvalContext ctx;
  Row row;
  Value v = Eval(*Binary(BinaryOp::kSub, Lit(Value::Timestamp(1000)),
                         Lit(Value::Timestamp(400))), row, ctx).value();
  EXPECT_EQ(v.type(), DataType::kInt64);
  EXPECT_EQ(v.int_value(), 600);
  Value v2 = Eval(*Binary(BinaryOp::kAdd, Lit(Value::Timestamp(1000)),
                          LitInt(500)), row, ctx).value();
  EXPECT_EQ(v2.type(), DataType::kTimestamp);
  EXPECT_EQ(v2.timestamp_value(), 1500);
}

TEST(EvaluatorTest, CaseWhen) {
  EvalContext ctx;
  Row row = {Value::Int(7)};
  auto expr = CaseWhen({Binary(BinaryOp::kLt, ColRef(0), LitInt(5)),
                        LitString("small"),
                        Binary(BinaryOp::kLt, ColRef(0), LitInt(10)),
                        LitString("medium"), LitString("large")});
  EXPECT_EQ(Eval(*expr, row, ctx).value().string_value(), "medium");
}

TEST(EvaluatorTest, InList) {
  EvalContext ctx;
  Row row;
  EXPECT_TRUE(Eval(*InList({LitInt(2), LitInt(1), LitInt(2)}), row, ctx)
                  .value().bool_value());
  EXPECT_FALSE(Eval(*InList({LitInt(9), LitInt(1), LitInt(2)}), row, ctx)
                   .value().bool_value());
  // No match but a NULL candidate -> NULL.
  EXPECT_TRUE(Eval(*InList({LitInt(9), LitInt(1), LitNull()}), row, ctx)
                  .value().is_null());
}

TEST(EvaluatorTest, FunctionsAndVolatility) {
  EvalContext ctx;
  ctx.current_time = 777;
  Row row;
  EXPECT_EQ(Eval(*Func("abs", {LitInt(-5)}), row, ctx).value().int_value(), 5);
  EXPECT_EQ(Eval(*Func("upper", {LitString("abc")}), row, ctx)
                .value().string_value(), "ABC");
  EXPECT_EQ(Eval(*Func("current_timestamp", {}), row, ctx)
                .value().timestamp_value(), 777);
  EXPECT_EQ(ExprVolatility(Func("abs", {LitInt(1)})).value(),
            Volatility::kImmutable);
  EXPECT_EQ(ExprVolatility(Func("current_timestamp", {})).value(),
            Volatility::kContext);
  EXPECT_EQ(ExprVolatility(Func("random", {})).value(), Volatility::kVolatile);
  EXPECT_FALSE(ExprVolatility(Func("no_such_fn", {})).ok());
}

TEST(EvaluatorTest, DateTrunc) {
  EvalContext ctx;
  Row row;
  Micros t = 3 * kMicrosPerHour + 25 * kMicrosPerMinute + 9 * kMicrosPerSecond;
  Value v = Eval(*Func("date_trunc", {LitString("hour"), Lit(Value::Timestamp(t))}),
                 row, ctx).value();
  EXPECT_EQ(v.timestamp_value(), 3 * kMicrosPerHour);
}

TEST(EvaluatorTest, CastSemantics) {
  EXPECT_EQ(CastValue(Value::String("42"), DataType::kInt64).value().int_value(), 42);
  EXPECT_EQ(CastValue(Value::Int(3), DataType::kDouble).value().double_value(), 3.0);
  EXPECT_FALSE(CastValue(Value::String("xyz"), DataType::kInt64).ok());
  EXPECT_TRUE(CastValue(Value::Null(), DataType::kInt64).value().is_null());
}

// ---- Executor ----

TEST(ExecutorTest, ScanProducesAllRows) {
  ObjectId orders;
  TestDb db = MakeOrdersDb(&orders);
  auto out = ExecutePlan(*db.Scan(orders), db.Ctx());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 4u);
}

TEST(ExecutorTest, FilterDropsNonMatching) {
  ObjectId orders;
  TestDb db = MakeOrdersDb(&orders);
  auto plan = MakeFilter(db.Scan(orders),
                         Binary(BinaryOp::kGt, ColRef(2), LitInt(15)));
  auto out = ExecutePlan(*plan, db.Ctx());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 2u);
}

TEST(ExecutorTest, FilterPreservesRowIds) {
  ObjectId orders;
  TestDb db = MakeOrdersDb(&orders);
  auto all = ExecutePlan(*db.Scan(orders), db.Ctx()).value();
  auto plan = MakeFilter(db.Scan(orders),
                         Binary(BinaryOp::kEq, ColRef(1), LitString("bob")));
  auto out = ExecutePlan(*plan, db.Ctx()).value();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, all[1].id);
}

TEST(ExecutorTest, ProjectComputesExpressions) {
  ObjectId orders;
  TestDb db = MakeOrdersDb(&orders);
  auto plan = MakeProject(
      db.Scan(orders),
      {ColRef(1), Binary(BinaryOp::kMul, ColRef(2), LitInt(2))},
      {"customer", "double_amount"});
  auto out = ExecutePlan(*plan, db.Ctx()).value();
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].values[1].int_value(), 20);
  EXPECT_EQ(plan->output_schema.column(1).name, "double_amount");
}

TEST(ExecutorTest, InnerJoinMatchesKeys) {
  TestDb db;
  ObjectId customers = db.AddTable(
      "customers", Schema({{"name", DataType::kString}, {"tier", DataType::kString}}),
      {{Value::String("alice"), Value::String("gold")},
       {Value::String("bob"), Value::String("silver")}});
  ObjectId orders;
  TestDb db2 = MakeOrdersDb(&orders);
  // Rebuild both tables in one db.
  TestDb both;
  ObjectId o = both.AddTable("orders", OrdersSchema(),
                             {{Value::Int(1), Value::String("alice"), Value::Int(10)},
                              {Value::Int(2), Value::String("bob"), Value::Int(20)},
                              {Value::Int(3), Value::String("alice"), Value::Int(30)},
                              {Value::Int(4), Value::String("cara"), Value::Int(5)}});
  ObjectId c = both.AddTable(
      "customers", Schema({{"name", DataType::kString}, {"tier", DataType::kString}}),
      {{Value::String("alice"), Value::String("gold")},
       {Value::String("bob"), Value::String("silver")}});
  (void)customers; (void)db2;
  auto plan = MakeJoin(JoinType::kInner, both.Scan(o), both.Scan(c),
                       {ColRef(1)}, {ColRef(0)});
  auto out = ExecutePlan(*plan, both.Ctx()).value();
  EXPECT_EQ(out.size(), 3u);  // cara has no match
  EXPECT_EQ(plan->output_schema.size(), 5u);
}

TEST(ExecutorTest, LeftJoinNullExtendsUnmatched) {
  TestDb db;
  ObjectId o = db.AddTable("orders", OrdersSchema(),
                           {{Value::Int(1), Value::String("alice"), Value::Int(10)},
                            {Value::Int(4), Value::String("cara"), Value::Int(5)}});
  ObjectId c = db.AddTable(
      "customers", Schema({{"name", DataType::kString}, {"tier", DataType::kString}}),
      {{Value::String("alice"), Value::String("gold")}});
  auto plan = MakeJoin(JoinType::kLeft, db.Scan(o), db.Scan(c),
                       {ColRef(1)}, {ColRef(0)});
  auto out = ExecutePlan(*plan, db.Ctx()).value();
  ASSERT_EQ(out.size(), 2u);
  int nulls = 0;
  for (const IdRow& r : out) {
    if (r.values[3].is_null()) ++nulls;
  }
  EXPECT_EQ(nulls, 1);
}

TEST(ExecutorTest, FullJoinExtendsBothSides) {
  TestDb db;
  ObjectId l = db.AddTable("l", Schema({{"k", DataType::kInt64}}),
                           {{Value::Int(1)}, {Value::Int(2)}});
  ObjectId r = db.AddTable("r", Schema({{"k", DataType::kInt64}}),
                           {{Value::Int(2)}, {Value::Int(3)}});
  auto plan = MakeJoin(JoinType::kFull, db.Scan(l), db.Scan(r),
                       {ColRef(0)}, {ColRef(0)});
  auto out = ExecutePlan(*plan, db.Ctx()).value();
  EXPECT_EQ(out.size(), 3u);  // (1,null), (2,2), (null,3)
}

TEST(ExecutorTest, NullKeysNeverJoin) {
  TestDb db;
  ObjectId l = db.AddTable("l", Schema({{"k", DataType::kInt64}}),
                           {{Value::Null()}});
  ObjectId r = db.AddTable("r", Schema({{"k", DataType::kInt64}}),
                           {{Value::Null()}});
  auto inner = MakeJoin(JoinType::kInner, db.Scan(l), db.Scan(r),
                        {ColRef(0)}, {ColRef(0)});
  EXPECT_EQ(ExecutePlan(*inner, db.Ctx()).value().size(), 0u);
  auto full = MakeJoin(JoinType::kFull, db.Scan(l), db.Scan(r),
                       {ColRef(0)}, {ColRef(0)});
  EXPECT_EQ(ExecutePlan(*full, db.Ctx()).value().size(), 2u);
}

TEST(ExecutorTest, JoinResidualPredicate) {
  TestDb db;
  ObjectId l = db.AddTable("l", Schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}}),
                           {{Value::Int(1), Value::Int(10)},
                            {Value::Int(1), Value::Int(99)}});
  ObjectId r = db.AddTable("r", Schema({{"k", DataType::kInt64}, {"w", DataType::kInt64}}),
                           {{Value::Int(1), Value::Int(50)}});
  // Join on k with residual v < w.
  auto plan = MakeJoin(JoinType::kInner, db.Scan(l), db.Scan(r),
                       {ColRef(0)}, {ColRef(0)},
                       Binary(BinaryOp::kLt, ColRef(1), ColRef(3)));
  auto out = ExecutePlan(*plan, db.Ctx()).value();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].values[1].int_value(), 10);
}

TEST(ExecutorTest, UnionAllTagsBranches) {
  TestDb db;
  ObjectId t = db.AddTable("t", Schema({{"k", DataType::kInt64}}),
                           {{Value::Int(1)}});
  auto plan = MakeUnionAll(db.Scan(t), db.Scan(t));
  auto out = ExecutePlan(*plan, db.Ctx()).value();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NE(out[0].id, out[1].id);  // same source row, distinct identities
}

TEST(ExecutorTest, GroupedAggregation) {
  ObjectId orders;
  TestDb db = MakeOrdersDb(&orders);
  auto plan = MakeAggregate(
      db.Scan(orders), {ColRef(1)},
      {Agg(AggFunc::kCountStar, {}), Agg(AggFunc::kSum, {ColRef(2)})},
      {"customer", "n", "total"});
  auto out = ExecutePlan(*plan, db.Ctx()).value();
  ASSERT_EQ(out.size(), 3u);
  // std::map ordering: alice, bob, cara.
  EXPECT_EQ(out[0].values[0].string_value(), "alice");
  EXPECT_EQ(out[0].values[1].int_value(), 2);
  EXPECT_EQ(out[0].values[2].int_value(), 40);
}

TEST(ExecutorTest, ScalarAggregateOnEmptyInput) {
  TestDb db;
  ObjectId t = db.AddTable("t", Schema({{"v", DataType::kInt64}}), {});
  auto plan = MakeAggregate(db.Scan(t), {},
                            {Agg(AggFunc::kCountStar, {}),
                             Agg(AggFunc::kSum, {ColRef(0)})},
                            {"n", "total"});
  auto out = ExecutePlan(*plan, db.Ctx()).value();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].values[0].int_value(), 0);
  EXPECT_TRUE(out[0].values[1].is_null());
}

TEST(ExecutorTest, AggregateFunctions) {
  TestDb db;
  ObjectId t = db.AddTable("t", Schema({{"v", DataType::kInt64}, {"b", DataType::kBool}}),
                           {{Value::Int(1), Value::Bool(true)},
                            {Value::Int(2), Value::Bool(false)},
                            {Value::Int(2), Value::Bool(true)},
                            {Value::Null(), Value::Bool(true)}});
  auto plan = MakeAggregate(
      db.Scan(t), {},
      {Agg(AggFunc::kCount, {ColRef(0)}), Agg(AggFunc::kMin, {ColRef(0)}),
       Agg(AggFunc::kMax, {ColRef(0)}), Agg(AggFunc::kAvg, {ColRef(0)}),
       Agg(AggFunc::kCountIf, {ColRef(1)}),
       Agg(AggFunc::kCount, {ColRef(0)}, /*distinct=*/true)},
      {"c", "mn", "mx", "avg", "cif", "cd"});
  auto out = ExecutePlan(*plan, db.Ctx()).value();
  ASSERT_EQ(out.size(), 1u);
  const Row& r = out[0].values;
  EXPECT_EQ(r[0].int_value(), 3);       // count skips null
  EXPECT_EQ(r[1].int_value(), 1);       // min
  EXPECT_EQ(r[2].int_value(), 2);       // max
  EXPECT_DOUBLE_EQ(r[3].double_value(), 5.0 / 3.0);
  EXPECT_EQ(r[4].int_value(), 3);       // count_if trues
  EXPECT_EQ(r[5].int_value(), 2);       // distinct {1,2}
}

TEST(ExecutorTest, DistinctRemovesDuplicates) {
  TestDb db;
  ObjectId t = db.AddTable("t", Schema({{"v", DataType::kInt64}}),
                           {{Value::Int(1)}, {Value::Int(1)}, {Value::Int(2)}});
  auto plan = MakeDistinct(db.Scan(t));
  auto out = ExecutePlan(*plan, db.Ctx()).value();
  EXPECT_EQ(out.size(), 2u);
}

TEST(ExecutorTest, WindowRowNumberAndRunningSum) {
  TestDb db;
  ObjectId t = db.AddTable(
      "t", Schema({{"grp", DataType::kString}, {"v", DataType::kInt64}}),
      {{Value::String("a"), Value::Int(10)},
       {Value::String("a"), Value::Int(20)},
       {Value::String("b"), Value::Int(5)}});
  auto plan = MakeWindow(
      db.Scan(t), {ColRef(0)}, {{ColRef(1), true}},
      {Win(WindowFunc::kRowNumber, {}), Win(WindowFunc::kSum, {ColRef(1)})},
      {"rn", "running"});
  auto out = ExecutePlan(*plan, db.Ctx()).value();
  ASSERT_EQ(out.size(), 3u);
  // Partition "a" sorted by v: (10, rn=1, run=10), (20, rn=2, run=30).
  EXPECT_EQ(out[0].values[2].int_value(), 1);
  EXPECT_EQ(out[0].values[3].int_value(), 10);
  EXPECT_EQ(out[1].values[2].int_value(), 2);
  EXPECT_EQ(out[1].values[3].int_value(), 30);
  EXPECT_EQ(out[2].values[3].int_value(), 5);
}

TEST(ExecutorTest, WindowUnorderedIsWholePartition) {
  TestDb db;
  ObjectId t = db.AddTable(
      "t", Schema({{"grp", DataType::kString}, {"v", DataType::kInt64}}),
      {{Value::String("a"), Value::Int(10)},
       {Value::String("a"), Value::Int(20)}});
  auto plan = MakeWindow(db.Scan(t), {ColRef(0)}, {},
                         {Win(WindowFunc::kSum, {ColRef(1)})}, {"total"});
  auto out = ExecutePlan(*plan, db.Ctx()).value();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].values[2].int_value(), 30);
  EXPECT_EQ(out[1].values[2].int_value(), 30);
}

TEST(ExecutorTest, WindowRankHandlesTies) {
  TestDb db;
  ObjectId t = db.AddTable("t", Schema({{"v", DataType::kInt64}}),
                           {{Value::Int(10)}, {Value::Int(10)}, {Value::Int(20)}});
  auto plan = MakeWindow(db.Scan(t), {}, {{ColRef(0), true}},
                         {Win(WindowFunc::kRank, {}),
                          Win(WindowFunc::kDenseRank, {})},
                         {"r", "dr"});
  auto out = ExecutePlan(*plan, db.Ctx()).value();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].values[1].int_value(), 1);
  EXPECT_EQ(out[1].values[1].int_value(), 1);
  EXPECT_EQ(out[2].values[1].int_value(), 3);   // rank skips
  EXPECT_EQ(out[2].values[2].int_value(), 2);   // dense_rank does not
}

TEST(ExecutorTest, FlattenExpandsArrays) {
  TestDb db;
  ObjectId t = db.AddTable(
      "t", Schema({{"id", DataType::kInt64}, {"tags", DataType::kArray}}),
      {{Value::Int(1), Value::MakeArray({Value::String("x"), Value::String("y")})},
       {Value::Int(2), Value::Null()},
       {Value::Int(3), Value::MakeArray({Value::String("z")})}});
  auto plan = MakeFlatten(db.Scan(t), ColRef(1), "tag");
  auto out = ExecutePlan(*plan, db.Ctx()).value();
  ASSERT_EQ(out.size(), 3u);  // 2 + 0 (null dropped) + 1
  EXPECT_EQ(out[0].values[3].string_value(), "x");
  EXPECT_EQ(out[1].values[2].int_value(), 1);  // index column
}

TEST(ExecutorTest, OrderByAndLimit) {
  ObjectId orders;
  TestDb db = MakeOrdersDb(&orders);
  auto plan = MakeLimit(
      MakeOrderBy(db.Scan(orders), {{ColRef(2), /*ascending=*/false}}), 2);
  auto out = ExecutePlan(*plan, db.Ctx()).value();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].values[2].int_value(), 30);
  EXPECT_EQ(out[1].values[2].int_value(), 20);
}

TEST(ExecutorTest, RowIdsAreDeterministicAcrossRuns) {
  ObjectId orders;
  TestDb db = MakeOrdersDb(&orders);
  auto plan = MakeAggregate(db.Scan(orders), {ColRef(1)},
                            {Agg(AggFunc::kSum, {ColRef(2)})}, {"c", "t"});
  auto a = ExecutePlan(*plan, db.Ctx()).value();
  auto b = ExecutePlan(*plan, db.Ctx()).value();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
}

TEST(ExecutorTest, UserErrorSurfacesFromDeepInPlan) {
  ObjectId orders;
  TestDb db = MakeOrdersDb(&orders);
  auto plan = MakeProject(db.Scan(orders),
                          {Binary(BinaryOp::kDiv, ColRef(2), LitInt(0))},
                          {"boom"});
  auto out = ExecutePlan(*plan, db.Ctx());
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUserError);
}

TEST(ExecutorTest, RowsProcessedAccounting) {
  ObjectId orders;
  TestDb db = MakeOrdersDb(&orders);
  ExecContext ctx = db.Ctx();
  auto plan = MakeFilter(db.Scan(orders),
                         Binary(BinaryOp::kGt, ColRef(2), LitInt(15)));
  ASSERT_TRUE(ExecutePlan(*plan, ctx).ok());
  EXPECT_EQ(ctx.rows_processed, 4u + 2u);  // scan output + filter output
}

}  // namespace
}  // namespace dvs
