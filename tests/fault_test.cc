// Unit tests for the deterministic fault-injection registry (src/fault/).
//
// The properties that make the chaos suite trustworthy live here: decisions
// are a pure function of (seed, site, scope, per-scope counter); scopes are
// independent of each other's evaluation order; bursts, fire caps, and scope
// filters behave as documented; and the global injector pointer install /
// restore is exact.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "fault/injector.h"

namespace dvs {
namespace fault {
namespace {

std::vector<bool> DecisionStream(FaultInjector* inj, const char* site,
                                 const char* scope, int n) {
  std::vector<bool> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(inj->Evaluate(site, scope).has_value());
  }
  return out;
}

TEST(FaultInjectorTest, UnarmedSiteNeverFires) {
  FaultInjector inj(1);
  EXPECT_FALSE(inj.Evaluate(kSiteRefreshExecute, "dt1").has_value());
  EXPECT_TRUE(inj.Check(kSiteRefreshExecute, "dt1").ok());
  EXPECT_EQ(inj.total_fires(), 0u);
}

TEST(FaultInjectorTest, SameSeedSameDecisions) {
  FaultInjector a(42), b(42);
  SiteConfig cfg;
  cfg.probability = 0.5;
  a.Arm(kSiteRefreshExecute, cfg);
  b.Arm(kSiteRefreshExecute, cfg);
  EXPECT_EQ(DecisionStream(&a, kSiteRefreshExecute, "dt1", 200),
            DecisionStream(&b, kSiteRefreshExecute, "dt1", 200));
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  FaultInjector a(42), b(43);
  SiteConfig cfg;
  cfg.probability = 0.5;
  a.Arm(kSiteRefreshExecute, cfg);
  b.Arm(kSiteRefreshExecute, cfg);
  EXPECT_NE(DecisionStream(&a, kSiteRefreshExecute, "dt1", 200),
            DecisionStream(&b, kSiteRefreshExecute, "dt1", 200));
}

// The determinism anchor: a scope's decision stream depends only on how many
// times that scope was evaluated, not on interleaved evaluations of other
// scopes. This is what makes parallel execution (worker threads evaluating
// different DTs in arbitrary order) byte-equivalent to serial execution.
TEST(FaultInjectorTest, ScopesAreOrderIndependent) {
  SiteConfig cfg;
  cfg.probability = 0.5;

  FaultInjector serial(7);
  serial.Arm(kSiteRefreshExecute, cfg);
  auto a_alone = DecisionStream(&serial, kSiteRefreshExecute, "a", 50);
  auto b_alone = DecisionStream(&serial, kSiteRefreshExecute, "b", 50);

  FaultInjector interleaved(7);
  interleaved.Arm(kSiteRefreshExecute, cfg);
  std::vector<bool> a_mixed, b_mixed;
  for (int i = 0; i < 50; ++i) {
    // Alternate order per round to prove it does not matter.
    if (i % 2 == 0) {
      b_mixed.push_back(
          interleaved.Evaluate(kSiteRefreshExecute, "b").has_value());
      a_mixed.push_back(
          interleaved.Evaluate(kSiteRefreshExecute, "a").has_value());
    } else {
      a_mixed.push_back(
          interleaved.Evaluate(kSiteRefreshExecute, "a").has_value());
      b_mixed.push_back(
          interleaved.Evaluate(kSiteRefreshExecute, "b").has_value());
    }
  }
  EXPECT_EQ(a_alone, a_mixed);
  EXPECT_EQ(b_alone, b_mixed);
}

TEST(FaultInjectorTest, FireRateTracksProbability) {
  FaultInjector inj(99);
  SiteConfig cfg;
  cfg.probability = 0.2;
  inj.Arm(kSiteRefreshExecute, cfg);
  int fires = 0;
  const int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    if (inj.Evaluate(kSiteRefreshExecute, "dt").has_value()) ++fires;
  }
  double rate = static_cast<double>(fires) / kTrials;
  EXPECT_NEAR(rate, 0.2, 0.03);
  auto stats = inj.site_stats(kSiteRefreshExecute);
  EXPECT_EQ(stats.evaluations, static_cast<uint64_t>(kTrials));
  EXPECT_EQ(stats.fires, static_cast<uint64_t>(fires));
}

TEST(FaultInjectorTest, ProbabilityBoundsAreExact) {
  FaultInjector inj(5);
  SiteConfig always;
  always.probability = 1.0;
  inj.Arm(kSiteRefreshExecute, always);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(inj.Evaluate(kSiteRefreshExecute, "dt").has_value());
  }
  SiteConfig never;
  never.probability = 0.0;
  inj.Arm(kSiteRefreshExecute, never);  // re-arm resets counters
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.Evaluate(kSiteRefreshExecute, "dt").has_value());
  }
}

TEST(FaultInjectorTest, ScopeFilterLimitsBlastRadius) {
  FaultInjector inj(5);
  SiteConfig cfg;
  cfg.probability = 1.0;
  cfg.scope_filter = "dt_b";
  inj.Arm(kSiteRefreshExecute, cfg);
  EXPECT_FALSE(inj.Evaluate(kSiteRefreshExecute, "dt_a").has_value());
  EXPECT_TRUE(inj.Evaluate(kSiteRefreshExecute, "dt_b").has_value());
  // Substring match: path scopes hit on a filename fragment.
  EXPECT_TRUE(inj.Evaluate(kSiteRefreshExecute, "/tmp/x/dt_b.log").has_value());
  // Filtered-out evaluations do not count as evaluations of the site.
  EXPECT_EQ(inj.site_stats(kSiteRefreshExecute).evaluations, 2u);
}

TEST(FaultInjectorTest, MaxFiresCapsTotalFaults) {
  FaultInjector inj(5);
  SiteConfig cfg;
  cfg.probability = 1.0;
  cfg.max_fires = 3;
  inj.Arm(kSiteRefreshExecute, cfg);
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    if (inj.Evaluate(kSiteRefreshExecute, "dt").has_value()) ++fires;
  }
  EXPECT_EQ(fires, 3);
}

// A burst of N makes one decided fire cover N consecutive evaluations of the
// same scope — the N-tick warehouse outage.
TEST(FaultInjectorTest, BurstExtendsAFireAcrossEvaluations) {
  FaultInjector inj(5);
  SiteConfig cfg;
  cfg.probability = 1.0;
  cfg.max_fires = 100;  // no cap interference
  cfg.burst = 3;
  inj.Arm(kSiteWarehouseOutage, cfg);
  // First decision fires and opens a burst covering the next 2 evaluations.
  EXPECT_TRUE(inj.Evaluate(kSiteWarehouseOutage, "wh").has_value());
  EXPECT_TRUE(inj.Evaluate(kSiteWarehouseOutage, "wh").has_value());
  EXPECT_TRUE(inj.Evaluate(kSiteWarehouseOutage, "wh").has_value());
  // Burst state is per scope.
  FaultInjector one_shot(5);
  SiteConfig low;
  low.probability = 0.0;
  low.burst = 3;
  one_shot.Arm(kSiteWarehouseOutage, low);
  EXPECT_FALSE(one_shot.Evaluate(kSiteWarehouseOutage, "wh").has_value());
}

TEST(FaultInjectorTest, InjectedFaultCarriesCodeMessageAndSite) {
  FaultInjector inj(5);
  SiteConfig cfg;
  cfg.probability = 1.0;
  cfg.code = StatusCode::kResourceExhausted;
  cfg.message = "pool exhausted";
  inj.Arm(kSiteRefreshExecute, cfg);
  Status s = inj.Check(kSiteRefreshExecute, "dt9");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(s.retryable());
  EXPECT_NE(s.message().find("pool exhausted"), std::string::npos);
  EXPECT_NE(s.message().find("refresh.execute"), std::string::npos);
  EXPECT_NE(s.message().find("dt9"), std::string::npos);
}

TEST(FaultInjectorTest, DisarmStopsFaults) {
  FaultInjector inj(5);
  SiteConfig cfg;
  cfg.probability = 1.0;
  inj.Arm(kSiteRefreshExecute, cfg);
  inj.Arm(kSitePersistFileOpen, cfg);
  EXPECT_FALSE(inj.Check(kSiteRefreshExecute, "dt").ok());
  inj.Disarm(kSiteRefreshExecute);
  EXPECT_TRUE(inj.Check(kSiteRefreshExecute, "dt").ok());
  EXPECT_FALSE(inj.Check(kSitePersistFileOpen, "p").ok());
  inj.DisarmAll();
  EXPECT_TRUE(inj.Check(kSitePersistFileOpen, "p").ok());
}

TEST(FaultInjectorTest, ScopedInjectorInstallsAndRestores) {
  EXPECT_EQ(ActiveInjector(), nullptr);
  FaultInjector outer(1), inner(2);
  {
    ScopedInjector install_outer(&outer);
    EXPECT_EQ(ActiveInjector(), &outer);
    {
      ScopedInjector install_inner(&inner);
      EXPECT_EQ(ActiveInjector(), &inner);
    }
    EXPECT_EQ(ActiveInjector(), &outer);
  }
  EXPECT_EQ(ActiveInjector(), nullptr);
}

// Concurrent evaluations of disjoint scopes must be safe (the execute phase
// evaluates refresh.execute from worker threads) and keep per-scope streams
// identical to serial evaluation.
TEST(FaultInjectorTest, ThreadSafeAndPerScopeDeterministicUnderConcurrency) {
  SiteConfig cfg;
  cfg.probability = 0.5;

  FaultInjector serial(11);
  serial.Arm(kSiteRefreshExecute, cfg);
  std::vector<std::vector<bool>> expected;
  for (int s = 0; s < 4; ++s) {
    expected.push_back(DecisionStream(&serial, kSiteRefreshExecute,
                                      ("dt" + std::to_string(s)).c_str(), 100));
  }

  FaultInjector shared(11);
  shared.Arm(kSiteRefreshExecute, cfg);
  std::vector<std::vector<bool>> got(4);
  std::vector<std::thread> threads;
  for (int s = 0; s < 4; ++s) {
    threads.emplace_back([&shared, &got, s] {
      std::string scope = "dt" + std::to_string(s);
      for (int i = 0; i < 100; ++i) {
        got[s].push_back(
            shared.Evaluate(kSiteRefreshExecute, scope).has_value());
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int s = 0; s < 4; ++s) EXPECT_EQ(got[s], expected[s]);
}

}  // namespace
}  // namespace fault
}  // namespace dvs
