// Tests for sql/: lexer, parser, binder.

#include <gtest/gtest.h>

#include "sql/binder.h"
#include "sql/parser.h"
#include "sql/token.h"

namespace dvs {
namespace {

using sql::AlterDtStmt;
using sql::ParseSelect;
using sql::ParseStatement;
using sql::Statement;
using sql::StatementKind;

// ---- Lexer ----

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a, b2 FROM t WHERE a >= 10.5").value();
  EXPECT_EQ(tokens[0].text, "select");  // keywords lower-cased
  EXPECT_EQ(tokens[1].text, "a");
  EXPECT_TRUE(tokens[2].IsSymbol(","));
  EXPECT_EQ(tokens.back().type, TokenType::kEnd);
}

TEST(LexerTest, StringsAndEscapes) {
  auto tokens = Tokenize("'hello' 'it''s'").value();
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("SELECT 1 -- the answer\n + 2").value();
  // select, 1, +, 2, end
  EXPECT_EQ(tokens.size(), 5u);
}

TEST(LexerTest, MultiCharSymbols) {
  auto tokens = Tokenize("a <> b <= c >= d != e || f :: int").value();
  EXPECT_TRUE(tokens[1].IsSymbol("<>"));
  EXPECT_TRUE(tokens[3].IsSymbol("<="));
  EXPECT_TRUE(tokens[5].IsSymbol(">="));
  EXPECT_TRUE(tokens[7].IsSymbol("<>"));  // != normalizes
  EXPECT_TRUE(tokens[9].IsSymbol("||"));
  EXPECT_TRUE(tokens[11].IsSymbol("::"));
}

// ---- Parser ----

TEST(ParserTest, SimpleSelect) {
  auto sel = ParseSelect("SELECT a, b AS bee FROM t WHERE a > 1").value();
  ASSERT_EQ(sel->items.size(), 2u);
  EXPECT_EQ(sel->items[1].alias, "bee");
  ASSERT_TRUE(sel->from != nullptr);
  EXPECT_EQ(sel->from->name, "t");
  EXPECT_TRUE(sel->where != nullptr);
}

TEST(ParserTest, SelectStarAndLimit) {
  auto sel = ParseSelect("SELECT * FROM t ORDER BY a DESC LIMIT 5").value();
  EXPECT_TRUE(sel->items[0].star);
  ASSERT_EQ(sel->order_by.size(), 1u);
  EXPECT_FALSE(sel->order_by[0].ascending);
  EXPECT_EQ(sel->limit, 5);
}

TEST(ParserTest, Joins) {
  auto sel = ParseSelect(
      "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y").value();
  ASSERT_EQ(sel->from->kind, sql::TableRefKind::kJoin);
  EXPECT_EQ(sel->from->join_type, JoinType::kLeft);
  EXPECT_EQ(sel->from->left->join_type, JoinType::kInner);
}

TEST(ParserTest, GroupByAllAndHaving) {
  auto sel = ParseSelect(
      "SELECT c, count(*) n FROM t GROUP BY ALL HAVING count(*) > 1").value();
  EXPECT_TRUE(sel->group_by_all);
  EXPECT_TRUE(sel->having != nullptr);
  EXPECT_EQ(sel->items[1].alias, "n");
}

TEST(ParserTest, WindowOverClause) {
  auto sel = ParseSelect(
      "SELECT sum(v) OVER (PARTITION BY k ORDER BY ts DESC) FROM t").value();
  const auto& call = sel->items[0].expr;
  ASSERT_EQ(call->kind, sql::AstExprKind::kCall);
  ASSERT_TRUE(call->over.has_value());
  EXPECT_EQ(call->over->partition_by.size(), 1u);
  ASSERT_EQ(call->over->order_by.size(), 1u);
  EXPECT_FALSE(call->over->order_by[0].ascending);
}

TEST(ParserTest, CaseCastInBetweenInterval) {
  auto sel = ParseSelect(
      "SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END, CAST(a AS double), "
      "a::string, a IN (1, 2), a BETWEEN 1 AND 5, INTERVAL '10 minutes' "
      "FROM t").value();
  EXPECT_EQ(sel->items.size(), 6u);
  EXPECT_EQ(sel->items[0].expr->kind, sql::AstExprKind::kCase);
  EXPECT_EQ(sel->items[1].expr->kind, sql::AstExprKind::kCast);
  EXPECT_EQ(sel->items[2].expr->kind, sql::AstExprKind::kCast);
  EXPECT_EQ(sel->items[3].expr->kind, sql::AstExprKind::kIn);
  EXPECT_EQ(sel->items[4].expr->kind, sql::AstExprKind::kBetween);
  EXPECT_EQ(sel->items[5].expr->kind, sql::AstExprKind::kInterval);
}

TEST(ParserTest, CreateTable) {
  auto stmt = ParseStatement(
      "CREATE TABLE trains (id INT, name STRING, ts TIMESTAMP)").value();
  ASSERT_EQ(stmt.kind, StatementKind::kCreateTable);
  EXPECT_EQ(stmt.create_table->name, "trains");
  ASSERT_EQ(stmt.create_table->schema.size(), 3u);
  EXPECT_EQ(stmt.create_table->schema.column(2).type, DataType::kTimestamp);
}

TEST(ParserTest, CreateDynamicTable) {
  auto stmt = ParseStatement(
      "CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
      "AS SELECT a FROM t").value();
  ASSERT_EQ(stmt.kind, StatementKind::kCreateDynamicTable);
  EXPECT_EQ(stmt.create_dt->name, "dt");
  EXPECT_FALSE(stmt.create_dt->target_lag.downstream);
  EXPECT_EQ(stmt.create_dt->target_lag.duration, kMicrosPerMinute);
  EXPECT_EQ(stmt.create_dt->warehouse, "wh");
  EXPECT_NE(stmt.create_dt->select_sql.find("SELECT a"), std::string::npos);
}

TEST(ParserTest, CreateDynamicTableDownstream) {
  auto stmt = ParseStatement(
      "CREATE DYNAMIC TABLE dt TARGET_LAG = DOWNSTREAM WAREHOUSE = wh "
      "REFRESH_MODE = FULL AS SELECT a FROM t").value();
  EXPECT_TRUE(stmt.create_dt->target_lag.downstream);
  EXPECT_EQ(stmt.create_dt->refresh_mode, RefreshMode::kFull);
}

TEST(ParserTest, CreateDtRequiresLagAndWarehouse) {
  EXPECT_FALSE(ParseStatement(
      "CREATE DYNAMIC TABLE dt WAREHOUSE = wh AS SELECT 1").ok());
  EXPECT_FALSE(ParseStatement(
      "CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' AS SELECT 1").ok());
}

TEST(ParserTest, MinDataRetention) {
  auto ct = ParseStatement(
      "CREATE TABLE t (a INT) MIN_DATA_RETENTION = '7d'").value();
  EXPECT_EQ(ct.create_table->min_data_retention, 7 * kMicrosPerDay);

  auto dt = ParseStatement(
      "CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
      "MIN_DATA_RETENTION = '2 weeks' AS SELECT a FROM t").value();
  EXPECT_EQ(dt.create_dt->min_data_retention, 2 * kMicrosPerWeek);

  // Default: retain everything.
  auto bare = ParseStatement("CREATE TABLE u (a INT)").value();
  EXPECT_EQ(bare.create_table->min_data_retention, -1);
  // Must be a duration string.
  EXPECT_FALSE(ParseStatement(
      "CREATE TABLE t (a INT) MIN_DATA_RETENTION = 7").ok());
}

TEST(ParserTest, AlterDtSetTargetLag) {
  auto lag = ParseStatement(
      "ALTER DYNAMIC TABLE dt SET TARGET_LAG = '15 minutes'").value();
  ASSERT_EQ(lag.kind, StatementKind::kAlterDt);
  EXPECT_EQ(lag.alter_dt->action, AlterDtStmt::Action::kSetTargetLag);
  EXPECT_FALSE(lag.alter_dt->target_lag.downstream);
  EXPECT_EQ(lag.alter_dt->target_lag.duration, 15 * kMicrosPerMinute);

  auto down = ParseStatement(
      "ALTER DYNAMIC TABLE dt SET TARGET_LAG = DOWNSTREAM").value();
  EXPECT_TRUE(down.alter_dt->target_lag.downstream);

  EXPECT_FALSE(ParseStatement("ALTER DYNAMIC TABLE dt SET TARGET_LAG").ok());
  EXPECT_FALSE(
      ParseStatement("ALTER DYNAMIC TABLE dt SET TARGET_LAG = 99").ok());
  EXPECT_FALSE(ParseStatement("ALTER DYNAMIC TABLE dt SET WAREHOUSE = x").ok());
}

TEST(ParserTest, InsertDeleteUpdate) {
  auto ins = ParseStatement(
      "INSERT INTO t VALUES (1, 'a'), (2, 'b')").value();
  ASSERT_EQ(ins.kind, StatementKind::kInsert);
  EXPECT_EQ(ins.insert->rows.size(), 2u);

  auto del = ParseStatement("DELETE FROM t WHERE a = 1").value();
  ASSERT_EQ(del.kind, StatementKind::kDelete);
  EXPECT_TRUE(del.del->where != nullptr);

  auto upd = ParseStatement("UPDATE t SET a = 2, b = 'x' WHERE a = 1").value();
  ASSERT_EQ(upd.kind, StatementKind::kUpdate);
  EXPECT_EQ(upd.update->assignments.size(), 2u);
}

TEST(ParserTest, AlterDynamicTable) {
  auto stmt = ParseStatement("ALTER DYNAMIC TABLE dt REFRESH").value();
  ASSERT_EQ(stmt.kind, StatementKind::kAlterDt);
  EXPECT_EQ(stmt.alter_dt->action, sql::AlterDtStmt::Action::kRefresh);
  auto s2 = ParseStatement("ALTER DYNAMIC TABLE dt SUSPEND").value();
  EXPECT_EQ(s2.alter_dt->action, sql::AlterDtStmt::Action::kSuspend);
}

TEST(ParserTest, LateralFlatten) {
  auto sel = ParseSelect(
      "SELECT id, value FROM t, LATERAL FLATTEN(tags) f").value();
  ASSERT_EQ(sel->from->kind, sql::TableRefKind::kFlatten);
  EXPECT_EQ(sel->from->alias, "f");
}

TEST(ParserTest, SubqueryRequiresAlias) {
  EXPECT_TRUE(ParseSelect("SELECT x FROM (SELECT a x FROM t) sub").ok());
  EXPECT_FALSE(ParseSelect("SELECT x FROM (SELECT a x FROM t)").ok());
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM").ok());
  EXPECT_FALSE(ParseStatement("CREATE TABLE t (a unknown_type)").ok());
  EXPECT_FALSE(ParseStatement("FOO BAR").ok());
}

// ---- Binder ----

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_
                    .CreateBaseTable(
                        "orders",
                        Schema({{"id", DataType::kInt64},
                                {"customer", DataType::kString},
                                {"amount", DataType::kInt64}}),
                        {1, 0})
                    .ok());
    ASSERT_TRUE(catalog_
                    .CreateBaseTable("customers",
                                     Schema({{"name", DataType::kString},
                                             {"tier", DataType::kString}}),
                                     {2, 0})
                    .ok());
  }

  Result<sql::BindResult> Bind(const std::string& query) {
    auto sel = ParseSelect(query);
    if (!sel.ok()) return sel.status();
    sql::Binder binder(catalog_);
    return binder.BindSelect(*sel.value());
  }

  Catalog catalog_;
};

TEST_F(BinderTest, ResolvesColumnsAndSchema) {
  auto bound = Bind("SELECT customer, amount * 2 AS dbl FROM orders").value();
  ASSERT_EQ(bound.plan->output_schema.size(), 2u);
  EXPECT_EQ(bound.plan->output_schema.column(0).name, "customer");
  EXPECT_EQ(bound.plan->output_schema.column(1).name, "dbl");
  EXPECT_EQ(bound.plan->output_schema.column(1).type, DataType::kInt64);
}

TEST_F(BinderTest, UnknownColumnFails) {
  auto bound = Bind("SELECT nope FROM orders");
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, UnknownTableFails) {
  EXPECT_EQ(Bind("SELECT 1 FROM missing").status().code(),
            StatusCode::kNotFound);
}

TEST_F(BinderTest, AmbiguousColumnFails) {
  // Both orders and the self-join alias expose "amount".
  auto bound = Bind(
      "SELECT amount FROM orders a JOIN orders b ON a.id = b.id");
  ASSERT_FALSE(bound.ok());
  EXPECT_NE(bound.status().message().find("ambiguous"), std::string::npos);
}

TEST_F(BinderTest, QualifiedColumnsResolve) {
  auto bound = Bind(
      "SELECT a.amount, b.amount FROM orders a JOIN orders b ON a.id = b.id");
  EXPECT_TRUE(bound.ok());
}

TEST_F(BinderTest, EquiJoinKeysExtracted) {
  auto bound = Bind(
      "SELECT o.id FROM orders o JOIN customers c "
      "ON o.customer = c.name AND o.amount > 10").value();
  // Find the join node.
  const PlanNode* join = nullptr;
  VisitPlan(bound.plan, [&](const PlanNode& n) {
    if (n.kind == PlanKind::kJoin) join = &n;
  });
  ASSERT_NE(join, nullptr);
  ASSERT_EQ(join->left_keys.size(), 1u);
  EXPECT_TRUE(join->residual != nullptr);  // the > 10 conjunct
}

TEST_F(BinderTest, GroupByAllBinds) {
  auto bound = Bind(
      "SELECT customer, count(*) n, sum(amount) total FROM orders "
      "GROUP BY ALL").value();
  const PlanNode* agg = nullptr;
  VisitPlan(bound.plan, [&](const PlanNode& n) {
    if (n.kind == PlanKind::kAggregate) agg = &n;
  });
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->group_by.size(), 1u);
  EXPECT_EQ(agg->aggregates.size(), 2u);
}

TEST_F(BinderTest, PositionalGroupByAndOrderBy) {
  EXPECT_TRUE(Bind("SELECT customer, count(*) FROM orders GROUP BY 1 "
                   "ORDER BY 2 DESC").ok());
  EXPECT_FALSE(Bind("SELECT customer FROM orders GROUP BY 5").ok());
}

TEST_F(BinderTest, NonGroupedColumnRejected) {
  auto bound = Bind("SELECT customer, amount FROM orders GROUP BY customer");
  ASSERT_FALSE(bound.ok());
  EXPECT_NE(bound.status().message().find("GROUP BY"), std::string::npos);
}

TEST_F(BinderTest, HavingWithoutAggregationFails) {
  EXPECT_FALSE(Bind("SELECT customer FROM orders HAVING amount > 1").ok());
}

TEST_F(BinderTest, WindowCallsBind) {
  auto bound = Bind(
      "SELECT customer, row_number() OVER (PARTITION BY customer "
      "ORDER BY amount) rn FROM orders").value();
  const PlanNode* win = nullptr;
  VisitPlan(bound.plan, [&](const PlanNode& n) {
    if (n.kind == PlanKind::kWindow) win = &n;
  });
  ASSERT_NE(win, nullptr);
  EXPECT_EQ(win->partition_by.size(), 1u);
  EXPECT_EQ(win->window_calls.size(), 1u);
}

TEST_F(BinderTest, MixedWindowAndAggregateUnsupported) {
  auto bound = Bind(
      "SELECT customer, count(*), row_number() OVER (PARTITION BY customer) "
      "FROM orders GROUP BY customer");
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kUnsupported);
}

TEST_F(BinderTest, DependenciesTracked) {
  auto bound = Bind(
      "SELECT o.id FROM orders o JOIN customers c ON o.customer = c.name")
                   .value();
  EXPECT_EQ(bound.dependencies.size(), 2u);
}

TEST_F(BinderTest, SelectWithoutFrom) {
  auto bound = Bind("SELECT 1 + 1 AS two").value();
  EXPECT_EQ(bound.plan->output_schema.column(0).name, "two");
}

TEST_F(BinderTest, UnknownFunctionFails) {
  EXPECT_EQ(Bind("SELECT frobnicate(id) FROM orders").status().code(),
            StatusCode::kBindError);
}

TEST_F(BinderTest, CountStarOnlyInCount) {
  EXPECT_FALSE(Bind("SELECT sum(*) FROM orders").ok());
}

}  // namespace
}  // namespace dvs
