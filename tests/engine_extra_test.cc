// Additional end-to-end engine coverage: UNION ALL, LATERAL FLATTEN,
// subqueries in FROM, expression surface (IN/BETWEEN/CASE/INTERVAL/casts),
// multi-statement pipelines, and miscellaneous error paths.

#include <gtest/gtest.h>

#include <algorithm>

#include "dt/engine.h"

namespace dvs {
namespace {

class EngineExtraTest : public ::testing::Test {
 protected:
  EngineExtraTest() : clock_(kMicrosPerHour), engine_(clock_) {}

  void Exec(const std::string& sql) {
    auto r = engine_.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }

  QueryResult Q(const std::string& sql) {
    auto r = engine_.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? r.take() : QueryResult{};
  }

  void ExpectDvs(const std::string& dt) {
    const auto& meta = *engine_.catalog().Find(dt).value()->dt;
    auto expected = engine_.QueryAsOf(meta.def.sql, meta.data_timestamp);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    auto actual = Q("SELECT * FROM " + dt);
    auto render = [](const std::vector<Row>& rows) {
      std::vector<std::string> out;
      for (const Row& r : rows) out.push_back(RowToString(r));
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(render(actual.rows), render(expected.value()));
  }

  VirtualClock clock_;
  DvsEngine engine_;
};

TEST_F(EngineExtraTest, UnionAllQuery) {
  Exec("CREATE TABLE a (v INT)");
  Exec("CREATE TABLE b (v INT)");
  Exec("INSERT INTO a VALUES (1), (2)");
  Exec("INSERT INTO b VALUES (2), (3)");
  QueryResult r = Q("SELECT v FROM a UNION ALL SELECT v FROM b ORDER BY v");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0][0].int_value(), 1);
  EXPECT_EQ(r.rows[3][0].int_value(), 3);
}

TEST_F(EngineExtraTest, UnionAllThreeWayAndLimit) {
  Exec("CREATE TABLE a (v INT)");
  Exec("INSERT INTO a VALUES (1)");
  QueryResult r = Q("SELECT v FROM a UNION ALL SELECT v + 1 AS v FROM a "
                    "UNION ALL SELECT v + 2 AS v FROM a ORDER BY 1 LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[1][0].int_value(), 2);
}

TEST_F(EngineExtraTest, UnionAllColumnCountMismatchFails) {
  Exec("CREATE TABLE a (v INT, w INT)");
  auto r = engine_.Query("SELECT v FROM a UNION ALL SELECT v, w FROM a");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST_F(EngineExtraTest, UnionAllDtIsIncremental) {
  Exec("CREATE TABLE web (user_id INT, amount INT)");
  Exec("CREATE TABLE store (user_id INT, amount INT)");
  Exec("INSERT INTO web VALUES (1, 10)");
  Exec("INSERT INTO store VALUES (2, 20)");
  Exec("CREATE DYNAMIC TABLE all_sales TARGET_LAG = '1 minute' "
       "WAREHOUSE = wh AS SELECT user_id, amount FROM web "
       "UNION ALL SELECT user_id, amount FROM store");
  EXPECT_TRUE(engine_.catalog().Find("all_sales").value()->dt->incremental);
  EXPECT_EQ(Q("SELECT * FROM all_sales").rows.size(), 2u);

  clock_.Advance(kMicrosPerMinute);
  Exec("INSERT INTO web VALUES (3, 30)");
  Exec("DELETE FROM store WHERE user_id = 2");
  ObjectId id = engine_.ObjectIdOf("all_sales").value();
  auto outcome = engine_.refresh_engine().Refresh(id, clock_.Now());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().action, RefreshAction::kIncremental);
  EXPECT_EQ(Q("SELECT * FROM all_sales").rows.size(), 2u);
  ExpectDvs("all_sales");
}

TEST_F(EngineExtraTest, FlattenDtEndToEnd) {
  Exec("CREATE TABLE docs (id INT, tags ARRAY)");
  Exec("INSERT INTO docs VALUES (1, array_construct(7, 8)), "
       "(2, array_construct(9))");
  Exec("CREATE DYNAMIC TABLE doc_tags TARGET_LAG = '1 minute' "
       "WAREHOUSE = wh AS SELECT id, f.value AS tag "
       "FROM docs d, LATERAL FLATTEN(d.tags) f");
  EXPECT_EQ(Q("SELECT * FROM doc_tags").rows.size(), 3u);

  clock_.Advance(kMicrosPerMinute);
  Exec("INSERT INTO docs VALUES (3, array_construct(1, 2, 3))");
  Exec("DELETE FROM docs WHERE id = 1");
  ObjectId id = engine_.ObjectIdOf("doc_tags").value();
  auto outcome = engine_.refresh_engine().Refresh(id, clock_.Now());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().action, RefreshAction::kIncremental);
  EXPECT_EQ(Q("SELECT * FROM doc_tags").rows.size(), 4u);
  ExpectDvs("doc_tags");
}

TEST_F(EngineExtraTest, SubqueryInFrom) {
  Exec("CREATE TABLE t (k INT, v INT)");
  Exec("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
  QueryResult r = Q(
      "SELECT big_v FROM (SELECT v * 2 AS big_v FROM t WHERE v > 15) sub "
      "ORDER BY big_v");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].int_value(), 40);
}

TEST_F(EngineExtraTest, SubqueryWithAggregationInDt) {
  Exec("CREATE TABLE t (grp STRING, v INT)");
  Exec("INSERT INTO t VALUES ('a', 1), ('a', 2), ('b', 9)");
  Exec("CREATE DYNAMIC TABLE top_groups TARGET_LAG = '1 minute' "
       "WAREHOUSE = wh AS SELECT grp, total FROM "
       "(SELECT grp, sum(v) AS total FROM t GROUP BY grp) sums "
       "WHERE total > 2");
  EXPECT_EQ(Q("SELECT * FROM top_groups").rows.size(), 2u);
  clock_.Advance(kMicrosPerMinute);
  Exec("DELETE FROM t WHERE grp = 'a'");
  Exec("ALTER DYNAMIC TABLE top_groups REFRESH");
  EXPECT_EQ(Q("SELECT * FROM top_groups").rows.size(), 1u);
  ExpectDvs("top_groups");
}

TEST_F(EngineExtraTest, ExpressionSurface) {
  Exec("CREATE TABLE t (v INT, s STRING, ts TIMESTAMP)");
  Exec("INSERT INTO t VALUES (5, 'abc', 3600000000::timestamp)");
  QueryResult r = Q(
      "SELECT v IN (1, 5, 9) AS in_list, "
      "v BETWEEN 2 AND 7 AS in_range, "
      "CASE WHEN v > 3 THEN 'big' ELSE 'small' END AS label, "
      "upper(s) AS us, length(s) AS len, "
      "v::double AS vd, '42'::int AS forty_two, "
      "date_trunc('hour', ts + INTERVAL '30 minutes') AS hr, "
      "coalesce(NULL, v) AS co, greatest(v, 7) AS g "
      "FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  const Row& row = r.rows[0];
  EXPECT_TRUE(row[0].bool_value());
  EXPECT_TRUE(row[1].bool_value());
  EXPECT_EQ(row[2].string_value(), "big");
  EXPECT_EQ(row[3].string_value(), "ABC");
  EXPECT_EQ(row[4].int_value(), 3);
  EXPECT_DOUBLE_EQ(row[5].double_value(), 5.0);
  EXPECT_EQ(row[6].int_value(), 42);
  EXPECT_EQ(row[7].timestamp_value(), kMicrosPerHour);
  EXPECT_EQ(row[8].int_value(), 5);
  EXPECT_EQ(row[9].int_value(), 7);
}

TEST_F(EngineExtraTest, OrderByHiddenColumnAndDistinctInteraction) {
  Exec("CREATE TABLE t (k INT, v INT)");
  Exec("INSERT INTO t VALUES (1, 30), (2, 10), (3, 20)");
  // ORDER BY on a non-projected column (hidden sort column machinery).
  QueryResult r = Q("SELECT k FROM t ORDER BY v");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].int_value(), 2);
  EXPECT_EQ(r.schema.size(), 1u);  // hidden column stripped
  // ...but rejected under DISTINCT.
  auto bad = engine_.Query("SELECT DISTINCT k FROM t ORDER BY v");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kBindError);
}

TEST_F(EngineExtraTest, InsertArityAndTypeErrors) {
  Exec("CREATE TABLE t (v INT, s STRING)");
  EXPECT_FALSE(engine_.Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_FALSE(engine_.Execute("INSERT INTO t VALUES ('nope', 'x')").ok());
  // Coercible values pass.
  EXPECT_TRUE(engine_.Execute("INSERT INTO t VALUES ('7', 'x')").ok());
  EXPECT_EQ(Q("SELECT v FROM t").rows[0][0].int_value(), 7);
}

TEST_F(EngineExtraTest, DmlAgainstDtRejected) {
  Exec("CREATE TABLE t (v INT)");
  Exec("CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT v FROM t");
  EXPECT_FALSE(engine_.Execute("INSERT INTO d VALUES (1)").ok());
  EXPECT_FALSE(engine_.Execute("DELETE FROM d").ok());
  EXPECT_FALSE(engine_.Execute("UPDATE d SET v = 1").ok());
}

TEST_F(EngineExtraTest, SelfReferentialDtRejected) {
  Exec("CREATE TABLE t (v INT)");
  Exec("CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT v FROM t");
  // OR REPLACE binding the new definition against the *old* d: the new DT
  // would read itself. The cycle check must reject initialization.
  auto r = engine_.Execute(
      "CREATE OR REPLACE DYNAMIC TABLE d TARGET_LAG = '1 minute' "
      "WAREHOUSE = wh AS SELECT v FROM d");
  EXPECT_FALSE(r.ok());
}

TEST_F(EngineExtraTest, ChainedDtThroughViewAndUnion) {
  Exec("CREATE TABLE a (v INT)");
  Exec("CREATE TABLE b (v INT)");
  Exec("INSERT INTO a VALUES (1)");
  Exec("INSERT INTO b VALUES (2)");
  Exec("CREATE VIEW ab AS SELECT v FROM a UNION ALL SELECT v FROM b");
  Exec("CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT v, v * v AS sq FROM ab");
  EXPECT_EQ(Q("SELECT * FROM d").rows.size(), 2u);
  clock_.Advance(kMicrosPerMinute);
  Exec("INSERT INTO b VALUES (3)");
  Exec("ALTER DYNAMIC TABLE d REFRESH");
  EXPECT_EQ(Q("SELECT * FROM d").rows.size(), 3u);
  ExpectDvs("d");
}

TEST_F(EngineExtraTest, HavingFiltersGroups) {
  Exec("CREATE TABLE t (grp STRING, v INT)");
  Exec("INSERT INTO t VALUES ('a', 1), ('a', 2), ('b', 9)");
  QueryResult r = Q("SELECT grp, count(*) AS n FROM t GROUP BY grp "
                    "HAVING count(*) > 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].string_value(), "a");
}

TEST_F(EngineExtraTest, AggregateInsideExpression) {
  Exec("CREATE TABLE t (grp STRING, v INT)");
  Exec("INSERT INTO t VALUES ('a', 10), ('a', 20), ('b', 5)");
  QueryResult r = Q("SELECT grp, sum(v) / count(*) AS mean, "
                    "sum(v) * 2 AS double_total FROM t GROUP BY ALL "
                    "ORDER BY grp");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].int_value(), 15);
  EXPECT_EQ(r.rows[0][2].int_value(), 60);
}

}  // namespace
}  // namespace dvs
