// Tests for isolation/: derivation-aware histories, DSG construction,
// phenomena detection. Reproduces Figures 1 and 2 of the paper and checks
// Theorem 1 (transaction invariance) and Corollary 2 (encapsulation).

#include <gtest/gtest.h>

#include <algorithm>

#include "isolation/dsg.h"

namespace dvs {
namespace isolation {
namespace {

/// Figure 1: persisted table semantics. DT refreshes are ordinary
/// transactions (T3, T4) that read base versions and write y versions.
History Figure1History() {
  History h;
  h.Write(1, "x", 1).Commit(1);
  h.Read(3, "x", 1);
  h.Write(3, "y", 3);
  h.Commit(3);
  h.Write(2, "x", 2).Commit(2);
  h.Read(4, "x", 2);
  h.Write(4, "y", 4);
  h.Commit(4);
  h.Read(5, "y", 3);
  h.Read(5, "x", 2);
  h.Commit(5);
  return h;
}

/// Figure 2: the same application history under delayed view semantics —
/// refreshes become derivations.
History Figure2History() {
  History h;
  h.Write(1, "x", 1).Commit(1);
  h.Derive(3, "y", 3, {{"x", 1}}).Commit(3);
  h.Write(2, "x", 2).Commit(2);
  h.Derive(4, "y", 4, {{"x", 2}}).Commit(4);
  h.Read(5, "y", 3);
  h.Read(5, "x", 2);
  h.Commit(5);
  return h;
}

TEST(HistoryTest, BuilderAndAccessors) {
  History h = Figure2History();
  EXPECT_TRUE(h.IsCommitted(5));
  EXPECT_FALSE(h.IsAborted(5));
  EXPECT_EQ(h.transactions().size(), 5u);
  EXPECT_EQ(h.WriterOf({"x", 1}), 1);
  EXPECT_EQ(h.WriterOf({"y", 3}), -1);   // derived, not written
  EXPECT_EQ(h.DeriverOf({"y", 3}), 3);
  auto order = h.VersionOrder("y");
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0].version, 3);
  EXPECT_EQ(order[1].version, 4);
}

TEST(HistoryTest, DerivesFromClosureIsTransitive) {
  History h;
  h.Write(1, "a", 1).Commit(1);
  h.Derive(2, "b", 1, {{"a", 1}}).Commit(2);
  h.Derive(3, "c", 1, {{"b", 1}}).Commit(3);
  auto closure = h.DerivesFrom({"c", 1});
  EXPECT_EQ(closure.size(), 2u);
  EXPECT_TRUE(closure.count({"a", 1}));
  EXPECT_TRUE(closure.count({"b", 1}));
}

TEST(Figure1Test, PersistedTableSemanticsLooksSerializable) {
  // The paper's point: the traditional model *misses* the read skew because
  // the refresh transactions mask the conflict — the DSG is acyclic.
  History h = Figure1History();
  PhenomenaReport report = DetectPhenomena(h);
  EXPECT_FALSE(report.g0);
  EXPECT_FALSE(report.g1a);
  EXPECT_FALSE(report.g1b);
  EXPECT_FALSE(report.g1c);
  EXPECT_FALSE(report.g2);
  EXPECT_EQ(StrongestLevel(report), PlLevel::kPL3);  // "serializable"
}

TEST(Figure2Test, DerivationsRevealReadSkew) {
  // With derivations, T5's read of y3 (derived from x1) anti-depends on T2
  // (which overwrote x1), and T2 -> T5 via the read of x2: a G2 cycle.
  History h = Figure2History();
  Dsg g = Dsg::Build(h);

  // The refresh transactions T3/T4 vanish from the DSG (pure computation).
  for (const DsgEdge& e : g.edges()) {
    EXPECT_NE(e.from, 3);
    EXPECT_NE(e.to, 3);
    EXPECT_NE(e.from, 4);
    EXPECT_NE(e.to, 4);
  }

  // Expected edges per the paper's diagram.
  auto has_edge = [&](int from, int to, DepKind kind) {
    return std::any_of(g.edges().begin(), g.edges().end(),
                       [&](const DsgEdge& e) {
                         return e.from == from && e.to == to && e.kind == kind;
                       });
  };
  EXPECT_TRUE(has_edge(1, 5, DepKind::kWR));  // T5 read y3 ~ x1 by T1
  EXPECT_TRUE(has_edge(2, 5, DepKind::kWR));  // T5 read x2 by T2
  EXPECT_TRUE(has_edge(5, 2, DepKind::kRW));  // the revealed anti-dependency
  EXPECT_TRUE(has_edge(1, 2, DepKind::kWW));  // via consecutive y3 << y4

  PhenomenaReport report = DetectPhenomena(h);
  EXPECT_TRUE(report.g2);        // anti-dependency cycle
  EXPECT_TRUE(report.g_single);  // with exactly one anti edge
  EXPECT_FALSE(report.g0);
  EXPECT_FALSE(report.g1c);
  EXPECT_EQ(StrongestLevel(report), PlLevel::kPL2);  // read committed only
}

TEST(TheoremOneTest, DerivationsMoveBetweenTransactionsFreely) {
  // Move the derivation d3(y3|x1) from T3 into T1 itself (and d4 into T2);
  // the DSG must be identical (Theorem 1: Transaction Invariance).
  History moved;
  moved.Write(1, "x", 1);
  moved.Derive(1, "y", 3, {{"x", 1}});
  moved.Commit(1);
  moved.Write(2, "x", 2);
  moved.Derive(2, "y", 4, {{"x", 2}});
  moved.Commit(2);
  moved.Read(5, "y", 3);
  moved.Read(5, "x", 2);
  moved.Commit(5);

  Dsg a = Dsg::Build(Figure2History());
  Dsg b = Dsg::Build(moved);
  // Compare edge sets restricted to (from, to, kind).
  auto strip = [](const Dsg& g) {
    std::vector<std::tuple<int, int, DepKind>> out;
    for (const DsgEdge& e : g.edges()) out.emplace_back(e.from, e.to, e.kind);
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(strip(a), strip(b));
}

TEST(CorollaryTwoTest, EncapsulatedDerivationsChangeNothing) {
  // A derivation read and written entirely within one transaction can be
  // removed without affecting dependencies.
  History with;
  with.Write(1, "x", 1);
  with.Derive(1, "tmp", 1, {{"x", 1}});  // encapsulated: nobody reads tmp1
  with.Commit(1);
  with.Read(2, "x", 1).Commit(2);

  History without;
  without.Write(1, "x", 1).Commit(1);
  without.Read(2, "x", 1).Commit(2);

  auto strip = [](const Dsg& g) {
    std::vector<std::tuple<int, int, DepKind>> out;
    for (const DsgEdge& e : g.edges()) out.emplace_back(e.from, e.to, e.kind);
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(strip(Dsg::Build(with)), strip(Dsg::Build(without)));
}

TEST(PhenomenaTest, G0WriteCycle) {
  History h;
  h.Write(1, "x", 1);
  h.Write(2, "y", 1);
  h.Write(2, "x", 2);
  h.Write(1, "y", 2);
  h.Commit(1).Commit(2);
  PhenomenaReport r = DetectPhenomena(h);
  EXPECT_TRUE(r.g0);
  EXPECT_EQ(StrongestLevel(r), PlLevel::kNone);
}

TEST(PhenomenaTest, G1aAbortedReadDirect) {
  History h;
  h.Write(1, "x", 1).Abort(1);
  h.Read(2, "x", 1).Commit(2);
  EXPECT_TRUE(DetectPhenomena(h).g1a);
}

TEST(PhenomenaTest, G1aAbortedReadThroughDerivation) {
  // Reading a DT whose contents derive from an aborted write is still an
  // aborted read — derivations propagate the taint.
  History h;
  h.Write(1, "x", 1).Abort(1);
  h.Derive(3, "y", 1, {{"x", 1}}).Commit(3);
  h.Read(2, "y", 1).Commit(2);
  EXPECT_TRUE(DetectPhenomena(h).g1a);
}

TEST(PhenomenaTest, G1bIntermediateReadDirect) {
  History h;
  h.Write(1, "x", 1);
  h.Write(1, "x", 2);  // x1 is intermediate
  h.Commit(1);
  h.Read(2, "x", 1).Commit(2);
  EXPECT_TRUE(DetectPhenomena(h).g1b);
}

TEST(PhenomenaTest, G1bIntermediateReadThroughDerivation) {
  History h;
  h.Write(1, "x", 1);
  h.Write(1, "x", 2);
  h.Commit(1);
  h.Derive(3, "y", 1, {{"x", 1}}).Commit(3);
  h.Read(2, "y", 1).Commit(2);
  EXPECT_TRUE(DetectPhenomena(h).g1b);
}

TEST(PhenomenaTest, G1cCircularInformationFlow) {
  History h;
  h.Write(1, "x", 1);
  h.Read(1, "y", 1);
  h.Write(2, "y", 1);
  h.Read(2, "x", 1);
  h.Commit(1).Commit(2);
  // T1 -> T2 (T2 read x1), T2 -> T1 (T1 read y1): WR cycle.
  PhenomenaReport r = DetectPhenomena(h);
  EXPECT_TRUE(r.g1c);
  EXPECT_FALSE(r.g0);
}

TEST(PhenomenaTest, CleanSerializableHistory) {
  History h;
  h.Write(1, "x", 1).Commit(1);
  h.Read(2, "x", 1);
  h.Write(2, "y", 1);
  h.Commit(2);
  h.Read(3, "y", 1).Commit(3);
  PhenomenaReport r = DetectPhenomena(h);
  EXPECT_EQ(StrongestLevel(r), PlLevel::kPL3);
}

TEST(PhenomenaTest, WriteSkewIsG2ButNotGSingle) {
  // Classic write skew: two anti-dependency edges, no single-anti cycle.
  History h;
  h.Write(0, "x", 1);
  h.Write(0, "y", 1);
  h.Commit(0);
  h.Read(1, "x", 1);
  h.Read(2, "y", 1);
  h.Write(1, "y", 2);
  h.Write(2, "x", 2);
  h.Commit(1).Commit(2);
  PhenomenaReport r = DetectPhenomena(h);
  EXPECT_TRUE(r.g2);
  EXPECT_FALSE(r.g_single);  // needs two anti edges -> SI would allow it
}

TEST(DsgTest, UncommittedTransactionsExcluded) {
  History h;
  h.Write(1, "x", 1).Commit(1);
  h.Read(2, "x", 1);  // T2 never commits
  Dsg g = Dsg::Build(h);
  EXPECT_TRUE(g.edges().empty());
}

TEST(DsgTest, ToStringMentionsDerivationProvenance) {
  Dsg g = Dsg::Build(Figure2History());
  EXPECT_NE(g.ToString().find("derives from"), std::string::npos);
}

}  // namespace
}  // namespace isolation
}  // namespace dvs
