// Tests for types/: Value semantics, Schema, rows, change sets.

#include <gtest/gtest.h>

#include "types/row.h"
#include "types/schema.h"
#include "types/value.h"

namespace dvs {
namespace {

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kNull);
}

TEST(ValueTest, ConstructorsAndAccessors) {
  EXPECT_EQ(Value::Int(7).int_value(), 7);
  EXPECT_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::Bool(true).bool_value(), true);
  EXPECT_EQ(Value::String("hi").string_value(), "hi");
  EXPECT_EQ(Value::Timestamp(123).timestamp_value(), 123);
}

TEST(ValueTest, CompareWithinTypes) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::String("b").Compare(Value::String("a")), 0);
  EXPECT_LT(Value::Timestamp(5).Compare(Value::Timestamp(9)), 0);
}

TEST(ValueTest, CrossNumericComparison) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(3.5).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(-100)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Int(5).Hash());
  // Cross-numeric equal values must hash equal (used as join/group keys).
  EXPECT_EQ(Value::Int(5) == Value::Double(5.0), true);
  EXPECT_EQ(Value::Int(5).Hash(), Value::Double(5.0).Hash());
  EXPECT_NE(Value::Int(5).Hash(), Value::Int(6).Hash());
}

TEST(ValueTest, ArrayValue) {
  Value arr = Value::MakeArray({Value::Int(1), Value::String("x")});
  EXPECT_EQ(arr.type(), DataType::kArray);
  ASSERT_EQ(arr.array_value().size(), 2u);
  EXPECT_EQ(arr.array_value()[0].int_value(), 1);
  EXPECT_EQ(arr.ToString(), "[1, 'x']");
}

TEST(ValueTest, ArrayComparesLexicographically) {
  Value a = Value::MakeArray({Value::Int(1)});
  Value b = Value::MakeArray({Value::Int(1), Value::Int(2)});
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_EQ(a.Compare(Value::MakeArray({Value::Int(1)})), 0);
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::String("s").ToString(), "'s'");
}

TEST(SchemaTest, FindColumnCaseInsensitive) {
  Schema s({{"train_id", DataType::kInt64}, {"Arrival", DataType::kTimestamp}});
  EXPECT_EQ(s.FindColumn("TRAIN_ID").value(), 0u);
  EXPECT_EQ(s.FindColumn("arrival").value(), 1u);
  EXPECT_FALSE(s.FindColumn("nope").has_value());
}

TEST(SchemaTest, AmbiguityDetection) {
  Schema s({{"id", DataType::kInt64}, {"id", DataType::kInt64}});
  EXPECT_TRUE(s.IsAmbiguous("id"));
  EXPECT_FALSE(s.IsAmbiguous("other"));
}

TEST(SchemaTest, ConcatPreservesOrder) {
  Schema l({{"a", DataType::kInt64}});
  Schema r({{"b", DataType::kString}});
  Schema j = Schema::Concat(l, r);
  ASSERT_EQ(j.size(), 2u);
  EXPECT_EQ(j.column(0).name, "a");
  EXPECT_EQ(j.column(1).name, "b");
}

TEST(RowTest, HashRowAndEquality) {
  Row a = {Value::Int(1), Value::String("x")};
  Row b = {Value::Int(1), Value::String("x")};
  Row c = {Value::Int(2), Value::String("x")};
  EXPECT_EQ(HashRow(a), HashRow(b));
  EXPECT_TRUE(RowsEqual(a, b));
  EXPECT_FALSE(RowsEqual(a, c));
  EXPECT_FALSE(RowsEqual(a, Row{Value::Int(1)}));
}

TEST(ChangeSetTest, StatsAndInsertOnly) {
  ChangeSet cs = {
      {ChangeAction::kInsert, 1, {Value::Int(1)}},
      {ChangeAction::kInsert, 2, {Value::Int(2)}},
      {ChangeAction::kDelete, 1, {Value::Int(1)}},
  };
  ChangeStats stats = CountChanges(cs);
  EXPECT_EQ(stats.inserts, 2u);
  EXPECT_EQ(stats.deletes, 1u);
  EXPECT_EQ(stats.total(), 3u);
  EXPECT_FALSE(IsInsertOnly(cs));
  cs.pop_back();
  EXPECT_TRUE(IsInsertOnly(cs));
}

TEST(ChangeSetTest, SignConvention) {
  ChangeRow ins{ChangeAction::kInsert, 1, {}};
  ChangeRow del{ChangeAction::kDelete, 1, {}};
  EXPECT_EQ(ins.sign(), 1);
  EXPECT_EQ(del.sign(), -1);
}

}  // namespace
}  // namespace dvs
