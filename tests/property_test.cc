// Property-based randomized testing — the paper's level-4 workload tests
// (§6.1): "Because of delayed-view semantics with snapshot isolation, we
// have an extremely strong assertion we can make for most DTs: if you run
// the defining query as of the data timestamp, you should get the same
// result as in the DT."
//
// For each seed, random DT definitions are created twice — once with the
// system-chosen mode (incremental where possible) and once forced FULL —
// random CDC batches are applied, everything is refreshed, and after every
// round we assert:
//   1. DVS invariant: DT contents == defining query as of the data timestamp;
//   2. Mode equivalence: the incremental twin equals the FULL twin;
//   3. The §6.1 merge validations never tripped (refresh would have failed).

#include <gtest/gtest.h>

#include <algorithm>

#include "dt/engine.h"
#include "workload/query_generator.h"

namespace dvs {
namespace {

std::vector<std::string> Rendered(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& r : rows) out.push_back(RowToString(r));
  std::sort(out.begin(), out.end());
  return out;
}

struct PropertyParams {
  uint64_t seed;
  bool state_reuse;  ///< Also exercise the E12 extension path.
};

class DvsPropertyTest : public ::testing::TestWithParam<PropertyParams> {};

TEST_P(DvsPropertyTest, RandomPipelinesUpholdDelayedViewSemantics) {
  const PropertyParams params = GetParam();
  Rng rng(params.seed);
  VirtualClock clock(kMicrosPerHour);
  RefreshEngineOptions options;
  options.enable_state_reuse = params.state_reuse;
  DvsEngine engine(clock, options);

  ASSERT_TRUE(
      workload::QueryGenerator::SetupSources(&engine, &rng, 40).ok());

  workload::QueryGenerator generator(&rng);
  struct DtPair {
    std::string inc_name;
    std::string full_name;
    std::string query;
  };
  std::vector<DtPair> dts;
  constexpr int kNumDts = 6;
  for (int i = 0; i < kNumDts; ++i) {
    DtPair pair;
    pair.query = generator.Generate();
    pair.inc_name = "dt_inc_" + std::to_string(i);
    pair.full_name = "dt_full_" + std::to_string(i);
    auto inc = engine.Execute("CREATE DYNAMIC TABLE " + pair.inc_name +
                              " TARGET_LAG = '1 minute' WAREHOUSE = wh AS " +
                              pair.query);
    ASSERT_TRUE(inc.ok()) << pair.query << "\n" << inc.status().ToString();
    auto full = engine.Execute("CREATE DYNAMIC TABLE " + pair.full_name +
                               " TARGET_LAG = '1 minute' WAREHOUSE = wh "
                               "REFRESH_MODE = FULL AS " + pair.query);
    ASSERT_TRUE(full.ok()) << pair.query << "\n" << full.status().ToString();
    dts.push_back(std::move(pair));
  }

  constexpr int kRounds = 5;
  for (int round = 0; round < kRounds; ++round) {
    ASSERT_TRUE(workload::QueryGenerator::ApplyRandomDml(
                    &engine, &rng, /*ops=*/8).ok());
    clock.Advance(kMicrosPerMinute);
    const Micros ts = clock.Now();

    for (const DtPair& pair : dts) {
      for (const std::string& name : {pair.inc_name, pair.full_name}) {
        ObjectId id = engine.ObjectIdOf(name).value();
        auto outcome = engine.refresh_engine().Refresh(id, ts);
        ASSERT_TRUE(outcome.ok())
            << "seed=" << params.seed << " round=" << round << " dt=" << name
            << "\nquery: " << pair.query << "\n"
            << outcome.status().ToString();
      }

      // 1. DVS invariant for the incremental twin.
      auto expected = engine.QueryAsOf(pair.query, ts);
      ASSERT_TRUE(expected.ok()) << pair.query;
      auto actual = engine.Query("SELECT * FROM " + pair.inc_name);
      ASSERT_TRUE(actual.ok());
      ASSERT_EQ(Rendered(actual.value().rows), Rendered(expected.value()))
          << "seed=" << params.seed << " round=" << round
          << "\nquery: " << pair.query;

      // 2. Incremental == FULL.
      auto full_rows = engine.Query("SELECT * FROM " + pair.full_name);
      ASSERT_TRUE(full_rows.ok());
      ASSERT_EQ(Rendered(actual.value().rows),
                Rendered(full_rows.value().rows))
          << "seed=" << params.seed << " round=" << round
          << "\nquery: " << pair.query;
    }
  }
}

std::vector<PropertyParams> MakeParams() {
  std::vector<PropertyParams> out;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    out.push_back({seed, /*state_reuse=*/seed % 3 == 0});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DvsPropertyTest, ::testing::ValuesIn(MakeParams()),
    [](const ::testing::TestParamInfo<PropertyParams>& info) {
      return "seed" + std::to_string(info.param.seed) +
             (info.param.state_reuse ? "_statereuse" : "");
    });

}  // namespace
}  // namespace dvs
