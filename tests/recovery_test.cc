// End-to-end durability tests: checkpoint + WAL recovery reproduces the
// live system byte-identically (snapshot encoding) at worker_threads 0 and
// 4, recovered schedulers continue exactly where the live one would,
// checkpoint policy rotates the WAL, ALTER / suspend / DDL survive
// restarts, and retention GC bounds resident versions while every
// incremental refresh still succeeds.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>

#include "fault/injector.h"
#include "persist/manager.h"
#include "persist/recover.h"
#include "persist/retention.h"
#include "sched/scheduler.h"

namespace dvs {
namespace persist {
namespace {

namespace fs = std::filesystem;

std::string UniqueDir(const std::string& tag) {
  static int counter = 0;
  std::string dir =
      (fs::temp_directory_path() /
       ("dvs_recovery_" + tag + "_" + std::to_string(::getpid()) + "_" +
        std::to_string(counter++)))
          .string();
  fs::remove_all(dir);
  return dir;
}

void Exec(DvsEngine& engine, const std::string& sql) {
  auto r = engine.Execute(sql);
  ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
}

std::string Fingerprint(DvsEngine& engine, const SchedulerPersistState* st) {
  return EncodeSystemImage(CaptureSystemImage(engine, st));
}

std::string LogBytes(const std::vector<RefreshRecord>& log) {
  Encoder e;
  for (const RefreshRecord& r : log) EncodeRefreshRecordInto(&e, r);
  return e.Take();
}

std::vector<Row> Rows(DvsEngine& engine, const std::string& sql) {
  auto r = engine.Query(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  return r.ok() ? r.value().rows : std::vector<Row>{};
}

void ExpectSameRows(DvsEngine& a, DvsEngine& b, const std::string& sql) {
  std::vector<Row> ra = Rows(a, sql);
  std::vector<Row> rb = Rows(b, sql);
  ASSERT_EQ(ra.size(), rb.size()) << sql;
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_TRUE(RowsEqual(ra[i], rb[i])) << sql << " row " << i;
  }
}

/// DDL + a churn loop: inserts, updates, and deletes interleaved with
/// scheduler ticks, exercising INITIALIZE / INCREMENTAL / NO_DATA refreshes
/// and a DT-on-DT edge.
void BuildPipeline(DvsEngine& engine) {
  Exec(engine, "CREATE TABLE src (k INT, v INT)");
  Exec(engine, "INSERT INTO src VALUES (1, 10), (2, 20), (3, 30)");
  Exec(engine,
       "CREATE DYNAMIC TABLE agg TARGET_LAG = '2 minutes' WAREHOUSE = wh "
       "AS SELECT k, COUNT(*) AS c, SUM(v) AS s FROM src GROUP BY k");
  Exec(engine,
       "CREATE DYNAMIC TABLE wide TARGET_LAG = '4 minutes' WAREHOUSE = wh2 "
       "AS SELECT k, s FROM agg WHERE s >= 10");
}

/// Runs `ticks` iterations of DML + RunUntil starting at wall-time slot
/// `start_tick` (so a recovered scheduler can continue the exact sequence).
void Churn(DvsEngine& engine, Scheduler& sched, int start_tick, int ticks,
           int* next_key) {
  for (int i = start_tick; i < start_tick + ticks; ++i) {
    int k = (*next_key)++;
    Exec(engine, "INSERT INTO src VALUES (" + std::to_string(k % 5) + ", " +
                     std::to_string(k * 10) + ")");
    if (k % 3 == 0) {
      Exec(engine, "UPDATE src SET v = v + 1 WHERE k = " +
                       std::to_string(k % 5));
    }
    if (k % 4 == 0) {
      Exec(engine, "DELETE FROM src WHERE v > " + std::to_string(200 + k));
    }
    sched.RunUntil(kCanonicalBasePeriod * 2 * (i + 1));
  }
}

class RecoveryTest : public ::testing::TestWithParam<int> {};

TEST_P(RecoveryTest, RecoveredSystemIsByteIdenticalToLive) {
  const int workers = GetParam();
  const std::string dir = UniqueDir("identical_w" + std::to_string(workers));

  VirtualClock clock(0);
  DvsEngine engine(clock);
  auto manager = Manager::Open({dir, /*checkpoint_every_n_ticks=*/4}).take();
  ASSERT_TRUE(manager->Attach(&engine).ok());

  SchedulerOptions opts;
  opts.worker_threads = workers;
  opts.persistence = manager.get();
  Scheduler sched(&engine, &clock, opts);

  BuildPipeline(engine);
  int next_key = 100;
  Churn(engine, sched, 0, 9, &next_key);
  ASSERT_TRUE(manager->wal_status().ok())
      << manager->wal_status().ToString();

  SchedulerPersistState live_state = sched.ExportState();
  std::string live_fp = Fingerprint(engine, &live_state);

  // Recover into a fresh clock/engine and compare byte-for-byte.
  VirtualClock rclock(0);
  auto recovered = Recover(dir, &rclock);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  RecoveredSystem sys = recovered.take();
  rclock.AdvanceTo(clock.Now());
  EXPECT_EQ(Fingerprint(*sys.engine, &sys.sched), live_fp)
      << "recovered state diverges from live (workers=" << workers << ")";
  EXPECT_EQ(LogBytes(sys.sched.log), LogBytes(sched.log()));

  ExpectSameRows(engine, *sys.engine, "SELECT k, c, s FROM agg ORDER BY k");
  ExpectSameRows(engine, *sys.engine, "SELECT k, s FROM wide ORDER BY k");
  ExpectSameRows(engine, *sys.engine, "SELECT k, v FROM src ORDER BY k, v");

  // Billing parity.
  for (const auto& [name, wh] : engine.warehouses().all()) {
    Warehouse* rwh = sys.engine->warehouses().GetOrCreate(name);
    EXPECT_EQ(rwh->billed(), wh->billed()) << name;
    EXPECT_EQ(rwh->resumes(), wh->resumes()) << name;
  }

  // Row-id index parity on every stored table.
  for (const char* table : {"src", "agg", "wide"}) {
    const CatalogObject* a = engine.catalog().Find(table).value();
    const CatalogObject* b = sys.engine->catalog().Find(table).value();
    for (const IdRow& row : a->storage->ScanLatest()) {
      const RowLocation* la = a->storage->FindRow(row.id);
      const RowLocation* lb = b->storage->FindRow(row.id);
      ASSERT_NE(la, nullptr);
      ASSERT_NE(lb, nullptr);
      EXPECT_EQ(la->partition, lb->partition);
      EXPECT_EQ(la->offset, lb->offset);
    }
  }

  // The recovered scheduler continues exactly like the live one: run both
  // three more ticks (journaling off for the recovered copy) and compare.
  SchedulerOptions ropts;
  ropts.worker_threads = workers;
  Scheduler rsched(sys.engine.get(), &rclock, ropts);
  rsched.ImportState(sys.sched);

  int live_key = next_key, rec_key = next_key;
  Churn(engine, sched, 9, 3, &live_key);
  Churn(*sys.engine, rsched, 9, 3, &rec_key);
  EXPECT_EQ(LogBytes(rsched.log()), LogBytes(sched.log()));
  ExpectSameRows(engine, *sys.engine, "SELECT k, c, s FROM agg ORDER BY k");
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, RecoveryTest, ::testing::Values(0, 4));

TEST(RecoveryDdlTest, DropUndropCloneReplaceSurviveRestart) {
  const std::string dir = UniqueDir("ddl");
  VirtualClock clock(0);
  DvsEngine engine(clock);
  auto manager = Manager::Open({dir}).take();
  ASSERT_TRUE(manager->Attach(&engine).ok());

  Exec(engine, "CREATE TABLE t (a INT)");
  Exec(engine, "INSERT INTO t VALUES (1), (2)");
  Exec(engine, "CREATE VIEW v AS SELECT a FROM t");
  Exec(engine,
       "CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT a FROM t");
  Exec(engine, "CREATE TABLE t2 CLONE t");
  Exec(engine, "DROP TABLE t2");
  Exec(engine, "UNDROP TABLE t2");
  Exec(engine, "CREATE OR REPLACE TABLE r (b TEXT)");
  Exec(engine, "INSERT INTO r VALUES ('x')");
  Exec(engine, "DROP TABLE r");

  std::string live_fp = Fingerprint(engine, nullptr);
  VirtualClock rclock(0);
  auto recovered = Recover(dir, &rclock);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  rclock.AdvanceTo(clock.Now());
  EXPECT_EQ(Fingerprint(*recovered.value().engine, nullptr), live_fp);

  // The DDL log itself round-trips (linearizable history, §5.1).
  const auto& live_log = engine.catalog().ddl_log();
  const auto& rec_log = recovered.value().engine->catalog().ddl_log();
  ASSERT_EQ(live_log.size(), rec_log.size());
  for (size_t i = 0; i < live_log.size(); ++i) {
    EXPECT_EQ(live_log[i].op, rec_log[i].op);
    EXPECT_EQ(live_log[i].object_name, rec_log[i].object_name);
    EXPECT_EQ(live_log[i].ts, rec_log[i].ts);
  }
}

TEST(RecoveryAlterTest, TargetLagChangeSurvivesAndReschedules) {
  const std::string dir = UniqueDir("alter");
  VirtualClock clock(0);
  DvsEngine engine(clock);
  auto manager = Manager::Open({dir}).take();
  ASSERT_TRUE(manager->Attach(&engine).ok());

  Exec(engine, "CREATE TABLE t (a INT)");
  Exec(engine, "INSERT INTO t VALUES (1)");
  Exec(engine,
       "CREATE DYNAMIC TABLE dt TARGET_LAG = '2 minutes' WAREHOUSE = wh "
       "AS SELECT a FROM t");

  SchedulerOptions opts;
  opts.persistence = manager.get();
  Scheduler sched(&engine, &clock, opts);
  ObjectId dt = engine.ObjectIdOf("dt").value();
  EXPECT_EQ(sched.RefreshPeriod(dt), 48 * kMicrosPerSecond);

  Exec(engine, "ALTER DYNAMIC TABLE dt SET TARGET_LAG = '8 minutes'");
  // The scheduler rereads the definition: new period next tick.
  EXPECT_EQ(sched.RefreshPeriod(dt), 192 * kMicrosPerSecond);
  sched.RunUntil(20 * kMicrosPerMinute);

  Exec(engine, "ALTER DYNAMIC TABLE dt SUSPEND");

  SchedulerPersistState live_state = sched.ExportState();
  std::string live_fp = Fingerprint(engine, &live_state);

  VirtualClock rclock(0);
  auto recovered = Recover(dir, &rclock);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  RecoveredSystem sys = recovered.take();
  rclock.AdvanceTo(clock.Now());
  EXPECT_EQ(Fingerprint(*sys.engine, &sys.sched), live_fp);

  const CatalogObject* rdt = sys.engine->catalog().Find("dt").value();
  EXPECT_EQ(rdt->dt->def.target_lag.duration, 8 * kMicrosPerMinute);
  EXPECT_EQ(rdt->dt->state, DtState::kSuspended);

  Exec(*sys.engine, "ALTER DYNAMIC TABLE dt RESUME");
  EXPECT_EQ(sys.engine->catalog().Find("dt").value()->dt->state,
            DtState::kActive);

  // DOWNSTREAM is accepted too.
  Exec(*sys.engine, "ALTER DYNAMIC TABLE dt SET TARGET_LAG = DOWNSTREAM");
  EXPECT_TRUE(
      sys.engine->catalog().Find("dt").value()->dt->def.target_lag.downstream);
}

// The documented restart flow is Recover -> Attach a fresh manager -> import
// the scheduler state. The Attach checkpoint must carry that scheduler state:
// if it did not, a second crash before the first policy checkpoint would
// recover an empty refresh log and last_run = 0.
TEST(RecoveryCheckpointTest, ReAttachCheckpointCarriesSchedulerState) {
  const std::string dir = UniqueDir("reattach");
  VirtualClock clock(0);
  DvsEngine engine(clock);
  auto manager = Manager::Open({dir}).take();
  ASSERT_TRUE(manager->Attach(&engine).ok());
  SchedulerOptions opts;
  opts.persistence = manager.get();
  Scheduler sched(&engine, &clock, opts);
  BuildPipeline(engine);
  int next_key = 0;
  Churn(engine, sched, 0, 4, &next_key);
  const std::string live_log = LogBytes(sched.log());
  ASSERT_FALSE(live_log.empty());

  // Restart: recover, re-attach with the recovered scheduler state, and
  // "crash" again immediately — before any tick or policy checkpoint.
  VirtualClock rclock(0);
  auto recovered = Recover(dir, &rclock);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  RecoveredSystem sys = recovered.take();
  auto manager2 = Manager::Open({dir}).take();
  ASSERT_TRUE(manager2->Attach(sys.engine.get(), &sys.sched).ok());

  VirtualClock r2clock(0);
  auto again = Recover(dir, &r2clock);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(LogBytes(again.value().sched.log), live_log)
      << "refresh log lost across re-attach + immediate crash";
  EXPECT_EQ(again.value().sched.last_run, sys.sched.last_run);
}

TEST(RecoveryCheckpointTest, PolicyRotatesWalAndOldGenerationsAreDropped) {
  const std::string dir = UniqueDir("policy");
  VirtualClock clock(0);
  DvsEngine engine(clock);
  ManagerOptions mopts;
  mopts.dir = dir;
  mopts.checkpoint_every_n_ticks = 2;
  mopts.retain_checkpoints = 1;
  auto manager = Manager::Open(mopts).take();
  ASSERT_TRUE(manager->Attach(&engine).ok());
  EXPECT_EQ(manager->generation(), 0u);

  SchedulerOptions opts;
  opts.persistence = manager.get();
  Scheduler sched(&engine, &clock, opts);
  BuildPipeline(engine);
  int next_key = 0;
  Churn(engine, sched, 0, 8, &next_key);

  // 8 ticks / policy 2 => several checkpoints; WAL rotated each time.
  EXPECT_GE(manager->checkpoints_taken(), 4u);
  EXPECT_GT(manager->generation(), 2u);
  EXPECT_GT(manager->stats().checkpoint_bytes.load(), 0u);
  EXPECT_GT(manager->stats().wal_bytes.load(), 0u);

  // Only the retained generations remain on disk.
  size_t checkpoints = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    checkpoints += entry.path().filename().string().rfind("checkpoint-", 0) ==
                   0;
  }
  EXPECT_LE(checkpoints, 2u);

  SchedulerPersistState live_state = sched.ExportState();
  std::string live_fp = Fingerprint(engine, &live_state);
  VirtualClock rclock(0);
  auto recovered = Recover(dir, &rclock);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  rclock.AdvanceTo(clock.Now());
  EXPECT_EQ(Fingerprint(*recovered.value().engine, &recovered.value().sched),
            live_fp);
}

TEST(RetentionTest, PruneBoundsVersionsWhileRefreshesSucceed) {
  const std::string dir = UniqueDir("retention");
  VirtualClock clock(0);
  DvsEngine engine(clock);
  auto manager = Manager::Open({dir, /*checkpoint_every_n_ticks=*/6}).take();
  ASSERT_TRUE(manager->Attach(&engine).ok());

  Exec(engine,
       "CREATE TABLE src (k INT, v INT) MIN_DATA_RETENTION = '4 minutes'");
  Exec(engine, "INSERT INTO src VALUES (1, 10), (2, 20)");
  Exec(engine,
       "CREATE DYNAMIC TABLE agg TARGET_LAG = '2 minutes' WAREHOUSE = wh "
       "MIN_DATA_RETENTION = '4 minutes' "
       "AS SELECT k, COUNT(*) AS c, SUM(v) AS s FROM src GROUP BY k");
  ASSERT_TRUE(
      engine.catalog().Find("agg").value()->dt->incremental);

  SchedulerOptions opts;
  opts.persistence = manager.get();
  Scheduler sched(&engine, &clock, opts);

  const int kTicks = 40;
  for (int i = 1; i <= kTicks; ++i) {
    Exec(engine, "INSERT INTO src VALUES (" + std::to_string(i % 7) + ", " +
                     std::to_string(i) + ")");
    if (i % 4 == 0) {
      // Deletes rewrite touched partitions (copy-on-write); once the
      // replaced partitions age past the window, GC frees them.
      Exec(engine, "DELETE FROM src WHERE v < " + std::to_string(i - 10));
    }
    sched.RunUntil(kCanonicalBasePeriod * 2 * i);
  }

  // Every scheduled refresh succeeded — pruning never ate a frontier.
  int incremental = 0;
  for (const RefreshRecord& rec : sched.log()) {
    EXPECT_FALSE(rec.failed) << rec.error;
    EXPECT_FALSE(rec.skipped) << rec.error;
    incremental += rec.action == RefreshAction::kIncremental;
  }
  EXPECT_GT(incremental, kTicks / 2);

  const VersionedTable& src = *engine.catalog().Find("src").value()->storage;
  const VersionedTable& agg = *engine.catalog().Find("agg").value()->storage;
  // GC fired and bounded the retained versions: a 4-minute window over a
  // 96-second cadence keeps a handful of versions, not one per commit.
  EXPECT_GT(src.stats().versions_pruned.load(), 0u);
  EXPECT_GT(src.stats().partitions_freed.load(), 0u);
  EXPECT_GT(agg.stats().versions_pruned.load(), 0u);
  EXPECT_LE(src.version_count(), 8u);
  EXPECT_LE(agg.version_count(), 8u);
  EXPECT_GT(src.first_version(), 1u);

  // The DT still equals its defining query at its data timestamp (§6.1).
  Micros data_ts = engine.catalog().Find("agg").value()->dt->data_timestamp;
  auto oracle = engine.QueryAsOf(
      "SELECT k, COUNT(*) AS c, SUM(v) AS s FROM src GROUP BY k", data_ts);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  std::vector<Row> stored = Rows(engine, "SELECT k, c, s FROM agg");
  std::vector<Row> expect = oracle.take();
  std::sort(stored.begin(), stored.end(), RowLess);
  std::sort(expect.begin(), expect.end(), RowLess);
  ASSERT_EQ(stored.size(), expect.size());
  for (size_t i = 0; i < stored.size(); ++i) {
    EXPECT_TRUE(RowsEqual(stored[i], expect[i]));
  }

  // Out-of-retention time travel now fails like production would: a clear
  // Status error, never a silently wrong (e.g. empty) snapshot.
  EXPECT_EQ(src.ResolveVersionAt(HlcTimestamp::AtWallTime(1)),
            kInvalidVersionId);
  auto below = engine.QueryAsOf("SELECT k, v FROM src", 1);
  ASSERT_FALSE(below.ok());
  EXPECT_NE(below.status().message().find("retention window"),
            std::string::npos)
      << below.status().ToString();
  // Inside the window (the DT's own data timestamp) stays exact — checked
  // against the oracle above.
  EXPECT_TRUE(engine.QueryAsOf("SELECT k, v FROM src", data_ts).ok());

  // Pruning replays: the recovered system matches the live one.
  SchedulerPersistState live_state = sched.ExportState();
  std::string live_fp = Fingerprint(engine, &live_state);
  VirtualClock rclock(0);
  auto recovered = Recover(dir, &rclock);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  rclock.AdvanceTo(clock.Now());
  EXPECT_EQ(Fingerprint(*recovered.value().engine, &recovered.value().sched),
            live_fp);
  const VersionedTable& rsrc =
      *recovered.value().engine->catalog().Find("src").value()->storage;
  EXPECT_EQ(rsrc.first_version(), src.first_version());
  EXPECT_EQ(rsrc.version_count(), src.version_count());
}

TEST(RetentionTest, KeepFromRespectsDownstreamFrontier) {
  // A suspended (stale) downstream pins the upstream's versions even when
  // the time-travel window would allow pruning them.
  VirtualClock clock(0);
  DvsEngine engine(clock);
  Exec(engine, "CREATE TABLE t (a INT) MIN_DATA_RETENTION = '1 minute'");
  Exec(engine, "INSERT INTO t VALUES (1)");
  Exec(engine,
       "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT a FROM t");
  CatalogObject* t = engine.catalog().Find("t").value();
  const CatalogObject* d = engine.catalog().Find("d").value();
  VersionId frontier = d->dt->frontier.at(t->id);

  // Age the table far past the window with more commits.
  for (int i = 0; i < 5; ++i) {
    clock.Advance(10 * kMicrosPerMinute);
    Exec(engine, "INSERT INTO t VALUES (" + std::to_string(i + 2) + ")");
  }
  VersionId keep = RetentionKeepFrom(engine.catalog(), *t, clock.Now());
  ASSERT_NE(keep, kInvalidVersionId);
  EXPECT_LE(keep, frontier);

  PruneOutcome pruned = ApplyPruneToObject(t, keep);
  EXPECT_GT(pruned.versions_pruned, 0u);
  EXPECT_TRUE(t->storage->has_version(frontier));

  // The downstream still refreshes incrementally across the prune.
  clock.Advance(kMicrosPerMinute);
  auto r = engine.refresh_engine().Refresh(d->id, clock.Now());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().action, RefreshAction::kIncremental);
}

TEST(RetentionTest, NoRetentionMeansNoPruning) {
  VirtualClock clock(0);
  DvsEngine engine(clock);
  Exec(engine, "CREATE TABLE t (a INT)");
  for (int i = 0; i < 10; ++i) {
    clock.Advance(kMicrosPerHour);
    Exec(engine, "INSERT INTO t VALUES (1)");
  }
  CatalogObject* t = engine.catalog().Find("t").value();
  EXPECT_EQ(RetentionKeepFrom(engine.catalog(), *t, clock.Now()),
            kInvalidVersionId);
  RetentionOutcome out = RunRetentionGc(engine.catalog(), clock.Now(), nullptr);
  EXPECT_EQ(out.versions_pruned, 0u);
  EXPECT_EQ(t->storage->version_count(), 11u);
}

TEST(RecoveryReclusterTest, MaintenanceRewriteSurvivesRestart) {
  // Recluster bypasses both the transaction manager and the refresh engine;
  // the per-table maintenance hook journals it, and replay re-runs the
  // deterministic repack to the same partition layout.
  const std::string dir = UniqueDir("recluster");
  VirtualClock clock(0);
  DvsEngine engine(clock);
  auto manager = Manager::Open({dir}).take();
  ASSERT_TRUE(manager->Attach(&engine).ok());

  Exec(engine, "CREATE TABLE t (a INT)");
  Exec(engine, "INSERT INTO t VALUES (1), (2), (3)");
  Exec(engine, "DELETE FROM t WHERE a = 2");
  CatalogObject* t = engine.catalog().Find("t").value();
  VersionId v = t->storage->Recluster(engine.txn().NextCommitTimestamp());
  EXPECT_TRUE(t->storage->version(v).data_equivalent);
  Exec(engine, "INSERT INTO t VALUES (4)");  // commits on top of the repack
  ASSERT_TRUE(manager->wal_status().ok()) << manager->wal_status().ToString();

  std::string live_fp = Fingerprint(engine, nullptr);
  VirtualClock rclock(0);
  auto recovered = Recover(dir, &rclock);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  rclock.AdvanceTo(clock.Now());
  EXPECT_EQ(Fingerprint(*recovered.value().engine, nullptr), live_fp);
  const VersionedTable& rt =
      *recovered.value().engine->catalog().Find("t").value()->storage;
  EXPECT_EQ(rt.latest_version(), t->storage->latest_version());
  EXPECT_TRUE(rt.version(v).data_equivalent);
}

TEST(RecoveryFailureTest, AutoSuspendAccountingSurvivesRestart) {
  const std::string dir = UniqueDir("failure");
  VirtualClock clock(0);
  DvsEngine engine(clock);
  auto manager = Manager::Open({dir}).take();
  ASSERT_TRUE(manager->Attach(&engine).ok());

  Exec(engine, "CREATE TABLE t (a INT)");
  Exec(engine, "INSERT INTO t VALUES (1)");
  Exec(engine,
       "CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT a FROM t");
  Exec(engine, "DROP TABLE t");

  // Failing refreshes count toward auto-suspend (§3.3.3).
  ObjectId dt = engine.ObjectIdOf("dt").value();
  for (int i = 0; i < 2; ++i) {
    clock.Advance(kMicrosPerMinute);
    auto r = engine.refresh_engine().Refresh(dt, clock.Now());
    EXPECT_FALSE(r.ok());
  }
  EXPECT_EQ(engine.catalog().Find("dt").value()->dt->consecutive_failures, 2);

  VirtualClock rclock(0);
  auto recovered = Recover(dir, &rclock);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(
      recovered.value().engine->catalog().Find("dt").value()->dt
          ->consecutive_failures,
      2);
}

// Satellite: the failing Status (code + message), retry attempts, and
// accumulated backoff on every refresh-log record round-trip through the
// WAL / checkpoint into recovery — and the kRefreshFailure journal replays
// the transient-failure accounting exactly, so a restarted system keeps the
// same "never counts toward auto-suspend" bookkeeping as the live one.
TEST_P(RecoveryTest, TransientRetryAccountingRoundTripsThroughRecovery) {
  const int workers = GetParam();
  const std::string dir = UniqueDir("retry_w" + std::to_string(workers));

  VirtualClock clock(0);
  DvsEngine engine(clock);
  auto manager = Manager::Open({dir, /*checkpoint_every_n_ticks=*/3}).take();
  ASSERT_TRUE(manager->Attach(&engine).ok());

  SchedulerOptions opts;
  opts.worker_threads = workers;
  opts.persistence = manager.get();
  Scheduler sched(&engine, &clock, opts);
  BuildPipeline(engine);

  // Every agg refresh attempt fails transiently: each scheduled run
  // exhausts its 3 attempts (1s + 2s backoff) and degrades gracefully.
  fault::FaultInjector inj(/*seed=*/7);
  fault::SiteConfig cfg;
  cfg.code = StatusCode::kUnavailable;
  cfg.message = "replica fetch timed out";
  cfg.scope_filter = "agg";
  inj.Arm(fault::kSiteRefreshExecute, cfg);

  int next_key = 100;
  {
    fault::ScopedInjector active(&inj);
    Churn(engine, sched, 0, 3, &next_key);
  }
  ASSERT_TRUE(manager->wal_status().ok()) << manager->wal_status().ToString();

  int failed = 0;
  for (const RefreshRecord& rec : sched.log()) {
    if (rec.dt_name != "agg" || !rec.failed) continue;
    failed += 1;
    EXPECT_EQ(rec.error_code, StatusCode::kUnavailable);
    EXPECT_EQ(rec.attempts, 3);
    EXPECT_EQ(rec.retry_backoff, 3 * kMicrosPerSecond);
    EXPECT_NE(rec.error.find("replica fetch timed out"), std::string::npos);
    EXPECT_NE(rec.error.find(fault::kSiteRefreshExecute), std::string::npos);
  }
  ASSERT_GT(failed, 0);
  const CatalogObject* agg = engine.catalog().Find("agg").value();
  EXPECT_EQ(agg->dt->state, DtState::kActive) << "transients must not suspend";
  EXPECT_EQ(agg->dt->consecutive_failures, 0);
  EXPECT_EQ(agg->dt->transient_failures, 3 * failed);

  // Restart mid-degradation: the retry accounting recovers field-for-field.
  SchedulerPersistState live_state = sched.ExportState();
  VirtualClock rclock(0);
  auto recovered = Recover(dir, &rclock);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  RecoveredSystem sys = recovered.take();
  rclock.AdvanceTo(clock.Now());
  EXPECT_EQ(Fingerprint(*sys.engine, &sys.sched),
            Fingerprint(engine, &live_state));
  ASSERT_EQ(sys.sched.log.size(), sched.log().size());
  for (size_t i = 0; i < sched.log().size(); ++i) {
    const RefreshRecord& live = sched.log()[i];
    const RefreshRecord& rec = sys.sched.log[i];
    EXPECT_EQ(rec.error_code, live.error_code) << "record " << i;
    EXPECT_EQ(rec.attempts, live.attempts) << "record " << i;
    EXPECT_EQ(rec.retry_backoff, live.retry_backoff) << "record " << i;
    EXPECT_EQ(rec.error, live.error) << "record " << i;
  }
  const CatalogObject* ragg = sys.engine->catalog().Find("agg").value();
  EXPECT_EQ(ragg->dt->transient_failures, agg->dt->transient_failures);
  EXPECT_EQ(ragg->dt->consecutive_failures, 0);
  EXPECT_EQ(ragg->dt->state, DtState::kActive);

  // Faults stop; live and recovered continue identically and converge.
  SchedulerOptions ropts;
  ropts.worker_threads = workers;
  Scheduler rsched(sys.engine.get(), &rclock, ropts);
  rsched.ImportState(sys.sched);
  int live_key = next_key, rec_key = next_key;
  Churn(engine, sched, 3, 3, &live_key);
  Churn(*sys.engine, rsched, 3, 3, &rec_key);
  EXPECT_EQ(LogBytes(rsched.log()), LogBytes(sched.log()));
  ExpectSameRows(engine, *sys.engine, "SELECT k, c, s FROM agg ORDER BY k");
  ExpectSameRows(engine, *sys.engine, "SELECT k, s FROM wide ORDER BY k");
  EXPECT_EQ(agg->dt->transient_failures, 0) << "success resets the counter";
  EXPECT_EQ(ragg->dt->transient_failures, 0);
}

// Satellite: injected *permanent* failures drive auto-suspend (§3.3.3)
// exactly as a real bug would, the suspension survives a restart, and the
// ALTER RESUME + post-resume successes recover byte-identically too.
TEST_P(RecoveryTest, InjectedPermanentFailuresSuspendResumeAndRecover) {
  const int workers = GetParam();
  const std::string dir = UniqueDir("suspend_w" + std::to_string(workers));

  VirtualClock clock(0);
  DvsEngine engine(clock);
  auto manager = Manager::Open({dir, /*checkpoint_every_n_ticks=*/4}).take();
  ASSERT_TRUE(manager->Attach(&engine).ok());

  SchedulerOptions opts;
  opts.worker_threads = workers;
  opts.persistence = manager.get();
  Scheduler sched(&engine, &clock, opts);
  BuildPipeline(engine);

  fault::FaultInjector inj(/*seed=*/11);
  fault::SiteConfig cfg;
  cfg.code = StatusCode::kInternal;
  cfg.message = "metadata corrupted";
  cfg.scope_filter = "agg";
  inj.Arm(fault::kSiteRefreshExecute, cfg);

  int next_key = 100;
  {
    fault::ScopedInjector active(&inj);
    Churn(engine, sched, 0, 4, &next_key);
  }
  const CatalogObject* agg = engine.catalog().Find("agg").value();
  ASSERT_EQ(agg->dt->state, DtState::kSuspended);
  EXPECT_EQ(agg->dt->consecutive_failures, 5);
  EXPECT_EQ(agg->dt->transient_failures, 0);
  int failed = 0;
  for (const RefreshRecord& rec : sched.log()) {
    if (rec.dt_name != "agg" || !rec.failed) continue;
    failed += 1;
    EXPECT_EQ(rec.error_code, StatusCode::kInternal);
    EXPECT_EQ(rec.attempts, 1) << "permanent failures never retry";
    EXPECT_EQ(rec.retry_backoff, 0);
    EXPECT_NE(rec.error.find("metadata corrupted"), std::string::npos);
  }
  EXPECT_EQ(failed, 5) << "suspension after max_consecutive_failures";

  // Restart while suspended: the suspension and its accounting persist.
  {
    VirtualClock rclock(0);
    auto recovered = Recover(dir, &rclock);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    const CatalogObject* ragg =
        recovered.value().engine->catalog().Find("agg").value();
    EXPECT_EQ(ragg->dt->state, DtState::kSuspended);
    EXPECT_EQ(ragg->dt->consecutive_failures, 5);
  }

  // Operator intervention: RESUME, then clean ticks.
  Exec(engine, "ALTER DYNAMIC TABLE agg RESUME");
  EXPECT_EQ(agg->dt->state, DtState::kActive);
  EXPECT_EQ(agg->dt->consecutive_failures, 0);
  Churn(engine, sched, 4, 2, &next_key);
  for (auto it = sched.log().rbegin(); it != sched.log().rend(); ++it) {
    if (it->dt_name != "agg") continue;
    EXPECT_FALSE(it->failed) << it->error;
    break;
  }

  SchedulerPersistState live_state = sched.ExportState();
  VirtualClock rclock(0);
  auto recovered = Recover(dir, &rclock);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  RecoveredSystem sys = recovered.take();
  rclock.AdvanceTo(clock.Now());
  EXPECT_EQ(Fingerprint(*sys.engine, &sys.sched),
            Fingerprint(engine, &live_state));
  EXPECT_EQ(LogBytes(sys.sched.log), LogBytes(sched.log()));
  const CatalogObject* ragg = sys.engine->catalog().Find("agg").value();
  EXPECT_EQ(ragg->dt->state, DtState::kActive);
  EXPECT_EQ(ragg->dt->consecutive_failures, 0);
  ExpectSameRows(engine, *sys.engine, "SELECT k, c, s FROM agg ORDER BY k");
}

}  // namespace
}  // namespace persist
}  // namespace dvs
