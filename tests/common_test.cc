// Tests for common/: Status, clocks, HLC, duration parsing, hashing, rng.

#include <gtest/gtest.h>

#include <set>

#include "common/clock.h"
#include "common/duration.h"
#include "common/hash.h"
#include "common/hlc.h"
#include "common/rng.h"
#include "common/status.h"

namespace dvs {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("table 'foo' does not exist");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: table 'foo' does not exist");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(BindError("x").code(), StatusCode::kBindError);
  EXPECT_EQ(UserError("x").code(), StatusCode::kUserError);
  EXPECT_EQ(Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(LockConflict("x").code(), StatusCode::kLockConflict);
  EXPECT_EQ(Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
}

// Pins every enum entry to its canonical name so the table cannot silently
// desync from the enum (the names appear in error messages, wal_dump output,
// and refresh-log post-mortems).
TEST(StatusTest, StatusCodeNameCoversEveryCode) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnsupported), "Unsupported");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kBindError), "BindError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUserError), "UserError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeName(StatusCode::kLockConflict), "LockConflict");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  // Every distinct code maps to a distinct, known name — no entry fell
  // through to the "Unknown" fallback.
  std::set<std::string> names;
  for (int c = 0; c <= static_cast<int>(StatusCode::kResourceExhausted); ++c) {
    names.insert(StatusCodeName(static_cast<StatusCode>(c)));
  }
  EXPECT_EQ(names.size(),
            static_cast<size_t>(StatusCode::kResourceExhausted) + 1);
  EXPECT_EQ(names.count("Unknown"), 0u);
}

TEST(StatusTest, RetryableCoversExactlyTheTransientClass) {
  EXPECT_TRUE(Unavailable("x").retryable());
  EXPECT_TRUE(ResourceExhausted("x").retryable());
  // Everything else — including kLockConflict, which the scheduler handles
  // via busy-skip, and kOk — is not retryable.
  EXPECT_FALSE(OkStatus().retryable());
  EXPECT_FALSE(LockConflict("x").retryable());
  EXPECT_FALSE(UserError("x").retryable());
  EXPECT_FALSE(Corruption("x").retryable());
  EXPECT_FALSE(Internal("x").retryable());
  EXPECT_FALSE(NotFound("x").retryable());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(VirtualClockTest, AdvancesManually) {
  VirtualClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150);
  clock.AdvanceTo(120);  // backwards jump is ignored
  EXPECT_EQ(clock.Now(), 150);
  clock.AdvanceTo(500);
  EXPECT_EQ(clock.Now(), 500);
}

TEST(RealClockTest, MovesForward) {
  RealClock clock;
  Micros a = clock.Now();
  Micros b = clock.Now();
  EXPECT_LE(a, b);
  EXPECT_GT(a, 0);
}

TEST(HlcTest, StrictlyMonotonicUnderFrozenClock) {
  VirtualClock clock(1000);
  HybridLogicalClock hlc(clock);
  HlcTimestamp prev = hlc.Next();
  for (int i = 0; i < 100; ++i) {
    HlcTimestamp next = hlc.Next();
    EXPECT_LT(prev, next);
    prev = next;
  }
  EXPECT_EQ(prev.physical, 1000);
  EXPECT_EQ(prev.logical, 100u);
}

TEST(HlcTest, PhysicalAdvanceResetsLogical) {
  VirtualClock clock(1000);
  HybridLogicalClock hlc(clock);
  hlc.Next();
  hlc.Next();
  clock.Advance(1);
  HlcTimestamp t = hlc.Next();
  EXPECT_EQ(t.physical, 1001);
  EXPECT_EQ(t.logical, 0u);
}

TEST(HlcTest, ObserveFoldsInRemoteTimestamp) {
  VirtualClock clock(10);
  HybridLogicalClock hlc(clock);
  hlc.Observe({5000, 7});
  HlcTimestamp t = hlc.Next();
  EXPECT_GT(t, (HlcTimestamp{5000, 7}));
}

TEST(HlcTest, AtWallTimeDominatesAllLogicalCounters) {
  HlcTimestamp commit{500, 123456};
  EXPECT_LT(commit, HlcTimestamp::AtWallTime(500) <= commit
                        ? HlcTimestamp::Max()
                        : HlcTimestamp::AtWallTime(500));
  EXPECT_LE(commit, HlcTimestamp::AtWallTime(500));
  EXPECT_LT(HlcTimestamp::AtWallTime(499), commit);
}

TEST(DurationTest, ParsesWordForms) {
  EXPECT_EQ(ParseDuration("1 minute").value(), kMicrosPerMinute);
  EXPECT_EQ(ParseDuration("10 minutes").value(), 10 * kMicrosPerMinute);
  EXPECT_EQ(ParseDuration("30 seconds").value(), 30 * kMicrosPerSecond);
  EXPECT_EQ(ParseDuration("16 hours").value(), 16 * kMicrosPerHour);
  EXPECT_EQ(ParseDuration("2 days").value(), 2 * kMicrosPerDay);
  EXPECT_EQ(ParseDuration("250 ms").value(), 250 * kMicrosPerMilli);
}

TEST(DurationTest, ParsesCompactForms) {
  EXPECT_EQ(ParseDuration("90s").value(), 90 * kMicrosPerSecond);
  EXPECT_EQ(ParseDuration("5m").value(), 5 * kMicrosPerMinute);
  EXPECT_EQ(ParseDuration("2h").value(), 2 * kMicrosPerHour);
  EXPECT_EQ(ParseDuration("1.5h").value(), kMicrosPerHour * 3 / 2);
}

// Retention windows (MIN_DATA_RETENTION) are expressed in days or weeks.
TEST(DurationTest, ParsesRetentionWindows) {
  EXPECT_EQ(ParseDuration("7d").value(), 7 * kMicrosPerDay);
  EXPECT_EQ(ParseDuration("1 day").value(), kMicrosPerDay);
  EXPECT_EQ(ParseDuration("14 days").value(), 14 * kMicrosPerDay);
  EXPECT_EQ(ParseDuration("1w").value(), kMicrosPerWeek);
  EXPECT_EQ(ParseDuration("2 weeks").value(), 2 * kMicrosPerWeek);
  EXPECT_EQ(ParseDuration("1 week").value(), 7 * kMicrosPerDay);
  EXPECT_EQ(ParseDuration("0.5 days").value(), 12 * kMicrosPerHour);
}

TEST(DurationTest, CaseAndWhitespaceInsensitive) {
  EXPECT_EQ(ParseDuration("  1 MINUTE  ").value(), kMicrosPerMinute);
}

TEST(DurationTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDuration("").ok());
  EXPECT_FALSE(ParseDuration("minute").ok());
  EXPECT_FALSE(ParseDuration("5 lightyears").ok());
}

TEST(FormatDurationTest, HumanReadable) {
  EXPECT_EQ(FormatDuration(500), "500us");
  EXPECT_EQ(FormatDuration(5 * kMicrosPerMilli), "5ms");
  EXPECT_EQ(FormatDuration(90 * kMicrosPerSecond), "1m 30s");
  EXPECT_EQ(FormatDuration(3 * kMicrosPerHour + 5 * kMicrosPerMinute),
            "3h 5m");
}

TEST(HashTest, DeterministicAndSpread) {
  EXPECT_EQ(HashString("dynamic_tables"), HashString("dynamic_tables"));
  EXPECT_NE(HashString("a"), HashString("b"));
  EXPECT_NE(HashUint64(1), HashUint64(2));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));  // order-dependent
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000000), b.Uniform(0, 1000000));
  }
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(7);
  int low = 0;
  for (int i = 0; i < 1000; ++i) {
    if (rng.Zipf(100) < 10) ++low;
  }
  EXPECT_GT(low, 400);  // with s=1, the first 10 of 100 ranks carry >50% mass
}

TEST(RngTest, WeightedPickHonorsWeights) {
  Rng rng(7);
  std::vector<double> w = {0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.WeightedPick(w), 1u);
  }
}

}  // namespace
}  // namespace dvs
