// End-to-end tests for the command-line tools (tools/*.cc), driven through
// std::system the way CI scripts invoke them. Each tool documents an exit
// code contract — 0 valid, 1 unreadable input, 2 usage error, 3 malformed /
// corrupt content — and these tests pin it against crafted inputs: a real
// WAL produced by the persist Manager (then torn), a handwritten Chrome
// trace (then broken), and a bench JSON in the BenchJson schema (then
// mangled). Runs from the build directory, where ctest starts the binary
// and the tool executables live.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "persist/manager.h"
#include "sched/scheduler.h"

namespace dvs {
namespace {

namespace fs = std::filesystem;

std::string UniqueDir(const std::string& tag) {
  static int counter = 0;
  std::string dir = (fs::temp_directory_path() /
                     ("dvs_tools_cli_" + tag + "_" +
                      std::to_string(::getpid()) + "_" +
                      std::to_string(counter++)))
                        .string();
  fs::remove_all(dir);
  return dir;
}

/// Runs `cmd` with stdout/stderr discarded and returns the tool's exit code
/// (or -1 if it did not exit normally).
int RunTool(const std::string& cmd) {
  int status = std::system((cmd + " >/dev/null 2>&1").c_str());
  if (status == -1 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

/// The tools are siblings of the test binary in the build directory; ctest
/// runs with that directory as cwd, but tolerate being launched from the
/// repo root too.
std::string ToolPath(const std::string& name) {
  if (fs::exists(name)) return "./" + name;
  if (fs::exists("build/" + name)) return "./build/" + name;
  return name;  // fall back to PATH; the usage-error tests still work
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

// ---- trace_dump ----

TEST(TraceDumpCliTest, ExitCodeContract) {
  const std::string tool = ToolPath("trace_dump");
  const std::string dir = UniqueDir("trace");
  fs::create_directories(dir);

  // Valid trace-event container (the WriteChromeTrace shape).
  const std::string valid = dir + "/ok.json";
  WriteFile(valid,
            "{\"traceEvents\": ["
            "{\"name\": \"refresh\", \"cat\": \"sched\", \"ph\": \"X\", "
            "\"ts\": 1, \"dur\": 5},"
            "{\"name\": \"tick\", \"cat\": \"sched\", \"ph\": \"i\", "
            "\"ts\": 2}"
            "]}");
  EXPECT_EQ(RunTool(tool + " --quiet " + valid), 0);
  EXPECT_EQ(RunTool(tool + " " + valid), 0);

  // JSON syntax error and schema violations are both exit 3.
  const std::string syntax = dir + "/syntax.json";
  WriteFile(syntax, "{\"traceEvents\": [");
  EXPECT_EQ(RunTool(tool + " --quiet " + syntax), 3);

  const std::string no_events = dir + "/no_events.json";
  WriteFile(no_events, "{\"other\": []}");
  EXPECT_EQ(RunTool(tool + " --quiet " + no_events), 3);

  const std::string bad_event = dir + "/bad_event.json";
  WriteFile(bad_event,
            "{\"traceEvents\": [{\"name\": \"x\", \"cat\": \"c\", "
            "\"ph\": \"X\", \"ts\": 1}]}");  // complete event without dur
  EXPECT_EQ(RunTool(tool + " --quiet " + bad_event), 3);

  // Unreadable file is exit 1; wrong arity is exit 2.
  EXPECT_EQ(RunTool(tool + " " + dir + "/does_not_exist.json"), 1);
  EXPECT_EQ(RunTool(tool), 2);
  EXPECT_EQ(RunTool(tool + " a.json b.json"), 2);

  fs::remove_all(dir);
}

// ---- bench_dump ----

TEST(BenchDumpCliTest, ExitCodeContract) {
  const std::string tool = ToolPath("bench_dump");
  const std::string dir = UniqueDir("bench");
  fs::create_directories(dir);

  // Valid file mirroring bench::BenchJson output.
  const std::string valid = dir + "/BENCH_OK.json";
  WriteFile(valid,
            "{\"experiment\": \"E21\", \"description\": \"profiling\", "
            "\"meta\": {\"smoke\": true}, \"points\": [\n"
            "  {\"kind\": \"determinism\", \"match\": true, \"rows\": 42},\n"
            "  {\"kind\": \"overhead\", \"pct\": 0.5}\n"
            "]}");
  EXPECT_EQ(RunTool(tool + " --quiet " + valid), 0);
  EXPECT_EQ(RunTool(tool + " " + valid), 0);

  // Schema violations: missing sections, point without kind, nested field.
  const std::string no_points = dir + "/no_points.json";
  WriteFile(no_points,
            "{\"experiment\": \"E21\", \"description\": \"d\", "
            "\"meta\": {}}");
  EXPECT_EQ(RunTool(tool + " --quiet " + no_points), 3);

  const std::string no_kind = dir + "/no_kind.json";
  WriteFile(no_kind,
            "{\"experiment\": \"E21\", \"description\": \"d\", "
            "\"meta\": {}, \"points\": [{\"rows\": 1}]}");
  EXPECT_EQ(RunTool(tool + " --quiet " + no_kind), 3);

  const std::string nested = dir + "/nested.json";
  WriteFile(nested,
            "{\"experiment\": \"E21\", \"description\": \"d\", "
            "\"meta\": {}, \"points\": "
            "[{\"kind\": \"k\", \"sub\": {\"a\": 1}}]}");
  EXPECT_EQ(RunTool(tool + " --quiet " + nested), 3);

  const std::string syntax = dir + "/syntax.json";
  WriteFile(syntax, "{\"experiment\": \"E21\",");
  EXPECT_EQ(RunTool(tool + " --quiet " + syntax), 3);

  EXPECT_EQ(RunTool(tool + " " + dir + "/missing.json"), 1);
  EXPECT_EQ(RunTool(tool), 2);
  EXPECT_EQ(RunTool(tool + " a b"), 2);

  fs::remove_all(dir);
}

// ---- wal_dump ----

TEST(WalDumpCliTest, ExitCodeContract) {
  const std::string tool = ToolPath("wal_dump");
  const std::string dir = UniqueDir("wal");

  // Produce a real WAL: a small pipeline churned through a few scheduler
  // ticks with persistence attached.
  {
    VirtualClock clock(0);
    DvsEngine engine(clock);
    auto opened = persist::Manager::Open({dir});
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    auto manager = opened.take();
    ASSERT_TRUE(manager->Attach(&engine).ok());
    SchedulerOptions opts;
    opts.persistence = manager.get();
    Scheduler sched(&engine, &clock, opts);
    ASSERT_TRUE(engine.Execute("CREATE TABLE t (k INT, v INT)").ok());
    ASSERT_TRUE(engine
                    .Execute("CREATE DYNAMIC TABLE dt1 TARGET_LAG = "
                             "'48 seconds' WAREHOUSE = wh AS "
                             "SELECT k, v FROM t WHERE v > 0")
                    .ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(engine
                      .Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                               ", " + std::to_string(10 * (i + 1)) + ")")
                      .ok());
      sched.RunUntil(kCanonicalBasePeriod * (i + 1));
    }
    ASSERT_TRUE(manager->wal_status().ok());
  }

  // Healthy WAL: listing and --verify both exit 0 on the directory.
  EXPECT_EQ(RunTool(tool + " " + dir), 0);
  EXPECT_EQ(RunTool(tool + " --verify " + dir), 0);
  EXPECT_EQ(RunTool(tool + " --stats " + dir), 0);

  // Find the live segment and tear its tail: flip a byte near the end.
  std::string wal_file;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0 && entry.path().extension() == ".log" &&
        (wal_file.empty() || name > fs::path(wal_file).filename().string())) {
      wal_file = entry.path().string();
    }
  }
  ASSERT_FALSE(wal_file.empty()) << "no wal-*.log segment written in " << dir;
  const auto size = fs::file_size(wal_file);
  ASSERT_GT(size, 8u);
  {
    std::fstream f(wal_file,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(size) - 3);
    char b = 0;
    f.seekg(static_cast<std::streamoff>(size) - 3);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0xFF);
    f.seekp(static_cast<std::streamoff>(size) - 3);
    f.write(&b, 1);
  }
  EXPECT_EQ(RunTool(tool + " --verify " + wal_file), 3);

  // Truncating mid-frame is also a torn tail.
  fs::resize_file(wal_file, size - 2);
  EXPECT_EQ(RunTool(tool + " --verify " + wal_file), 3);

  // Unreadable target and usage errors.
  EXPECT_EQ(RunTool(tool + " --verify " + dir + "/nope.log"), 1);
  EXPECT_EQ(RunTool(tool), 2);

  fs::remove_all(dir);
}

}  // namespace
}  // namespace dvs
