// Tests for §3.4 zero-copy cloning: CREATE [DYNAMIC] TABLE ... CLONE ...
// Clones share immutable micro-partitions (metadata-only copy), diverge
// independently, and cloned DTs avoid reinitialization — they keep their
// frontier and refresh history and continue refreshing "unperturbed".

#include <gtest/gtest.h>

#include "dt/engine.h"

namespace dvs {
namespace {

class CloneTest : public ::testing::Test {
 protected:
  CloneTest() : clock_(kMicrosPerHour), engine_(clock_) {}

  void Exec(const std::string& sql) {
    auto r = engine_.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }

  size_t Count(const std::string& table) {
    auto r = engine_.Query("SELECT count(*) AS n FROM " + table);
    EXPECT_TRUE(r.ok());
    return r.ok() ? static_cast<size_t>(r.value().rows[0][0].int_value()) : 0;
  }

  const DynamicTableMeta& Meta(const std::string& name) {
    return *engine_.catalog().Find(name).value()->dt;
  }

  VirtualClock clock_;
  DvsEngine engine_;
};

TEST_F(CloneTest, StorageCloneSharesPartitionsZeroCopy) {
  VersionedTable t(Schema({{"v", DataType::kInt64}}));
  std::vector<Row> rows;
  for (int i = 0; i < 1000; ++i) rows.push_back({Value::Int(i)});
  ASSERT_TRUE(t.ApplyChanges(t.MakeInsertChanges(std::move(rows)), {1, 0}).ok());
  uint64_t writes_before = t.stats().rows_written;

  auto clone = t.Clone();
  // No rows were copied: the clone's stats are fresh and the original's
  // write counter did not move.
  EXPECT_EQ(t.stats().rows_written, writes_before);
  EXPECT_EQ(clone->stats().rows_written, 0u);
  EXPECT_EQ(clone->ScanLatest().size(), 1000u);
  // Full time travel history is preserved.
  EXPECT_EQ(clone->version_count(), t.version_count());
}

TEST_F(CloneTest, StorageCloneDivergesIndependently) {
  VersionedTable t(Schema({{"v", DataType::kInt64}}));
  ASSERT_TRUE(t.ApplyChanges(t.MakeInsertChanges({{Value::Int(1)}}), {1, 0}).ok());
  auto clone = t.Clone();
  ASSERT_TRUE(
      clone->ApplyChanges(clone->MakeInsertChanges({{Value::Int(2)}}), {2, 0})
          .ok());
  ASSERT_TRUE(t.ApplyChanges(t.MakeInsertChanges({{Value::Int(3)}}), {3, 0}).ok());
  EXPECT_EQ(t.ScanLatest().size(), 2u);
  EXPECT_EQ(clone->ScanLatest().size(), 2u);
  EXPECT_EQ(clone->ScanLatest()[1].values[0].int_value(), 2);
}

TEST_F(CloneTest, BaseTableCloneViaSql) {
  Exec("CREATE TABLE t (v INT)");
  Exec("INSERT INTO t VALUES (1), (2), (3)");
  Exec("CREATE TABLE t2 CLONE t");
  EXPECT_EQ(Count("t2"), 3u);
  Exec("INSERT INTO t2 VALUES (4)");
  Exec("DELETE FROM t WHERE v = 1");
  EXPECT_EQ(Count("t"), 2u);
  EXPECT_EQ(Count("t2"), 4u);
}

TEST_F(CloneTest, CloneKindMismatchRejected) {
  Exec("CREATE TABLE t (v INT)");
  auto r = engine_.Execute("CREATE DYNAMIC TABLE d CLONE t");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CloneTest, CloneOfMissingSourceFails) {
  EXPECT_FALSE(engine_.Execute("CREATE TABLE x CLONE ghost").ok());
}

TEST_F(CloneTest, ViewsCannotBeCloned) {
  Exec("CREATE TABLE t (v INT)");
  Exec("CREATE VIEW vw AS SELECT v FROM t");
  auto r = engine_.catalog().CloneObject("vw2", "vw", {99, 0});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(CloneTest, ClonedDtAvoidsReinitialization) {
  Exec("CREATE TABLE src (v INT)");
  Exec("INSERT INTO src VALUES (1), (2)");
  Exec("CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT v * 10 AS v10 FROM src");
  Micros src_ts = Meta("d").data_timestamp;

  Exec("CREATE DYNAMIC TABLE d2 CLONE d");
  // Initialized without any computation: same data timestamp, same contents.
  EXPECT_TRUE(Meta("d2").initialized);
  EXPECT_EQ(Meta("d2").data_timestamp, src_ts);
  EXPECT_EQ(Count("d2"), 2u);

  // The clone refreshes *incrementally* from the inherited frontier — no
  // REINITIALIZE, no full recompute.
  clock_.Advance(kMicrosPerMinute);
  Exec("INSERT INTO src VALUES (3)");
  ObjectId id = engine_.ObjectIdOf("d2").value();
  auto outcome = engine_.refresh_engine().Refresh(id, clock_.Now());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome.value().action, RefreshAction::kIncremental);
  EXPECT_EQ(Count("d2"), 3u);

  // Original unaffected (still at its old data timestamp).
  EXPECT_EQ(Meta("d").data_timestamp, src_ts);
  EXPECT_EQ(Count("d"), 2u);
}

TEST_F(CloneTest, ClonedDtRefreshesIndependently) {
  Exec("CREATE TABLE src (v INT)");
  Exec("INSERT INTO src VALUES (1)");
  Exec("CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT v FROM src");
  Exec("CREATE DYNAMIC TABLE d2 CLONE d");
  clock_.Advance(kMicrosPerMinute);
  Exec("INSERT INTO src VALUES (2)");
  Exec("ALTER DYNAMIC TABLE d REFRESH");
  // Only the original moved.
  EXPECT_EQ(Count("d"), 2u);
  EXPECT_EQ(Count("d2"), 1u);
  // DVS: the clone's contents still match its defining query at *its* data
  // timestamp.
  auto expected = engine_.QueryAsOf(Meta("d2").def.sql,
                                    Meta("d2").data_timestamp);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(expected.value().size(), 1u);
}

TEST_F(CloneTest, CloneResetsFailureStateButKeepsHistory) {
  Exec("CREATE TABLE src (v INT)");
  Exec("INSERT INTO src VALUES (1)");
  Exec("CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT 10 / v AS q FROM src");
  Exec("INSERT INTO src VALUES (0)");
  ObjectId id = engine_.ObjectIdOf("d").value();
  clock_.Advance(kMicrosPerMinute);
  ASSERT_FALSE(engine_.refresh_engine().Refresh(id, clock_.Now()).ok());
  ASSERT_GT(Meta("d").consecutive_failures, 0);

  Exec("CREATE DYNAMIC TABLE d2 CLONE d");
  EXPECT_EQ(Meta("d2").consecutive_failures, 0);
  EXPECT_EQ(Meta("d2").state, DtState::kActive);
  EXPECT_EQ(Meta("d2").refresh_versions.size(),
            Meta("d").refresh_versions.size());
}

}  // namespace
}  // namespace dvs
