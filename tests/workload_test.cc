// Tests for workload/: the generators that drive property tests and the
// experiment harness must themselves be trustworthy — every generated query
// binds, fleets match their calibration, pumps actually insert.

#include <gtest/gtest.h>

#include <memory>

#include "ivm/incrementality.h"
#include "sched/scheduler.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "workload/fleet.h"
#include "workload/query_generator.h"
#include "workload/star_schema.h"

namespace dvs {
namespace {

TEST(QueryGeneratorTest, EveryGeneratedQueryParsesAndBinds) {
  VirtualClock clock(0);
  DvsEngine engine(clock);
  Rng rng(555);
  ASSERT_TRUE(workload::QueryGenerator::SetupSources(&engine, &rng, 5).ok());
  workload::QueryGenerator generator(&rng);
  for (int i = 0; i < 500; ++i) {
    std::string q = generator.Generate();
    auto select = sql::ParseSelect(q);
    ASSERT_TRUE(select.ok()) << q;
    sql::Binder binder(engine.catalog());
    auto bound = binder.BindSelect(*select.value());
    ASSERT_TRUE(bound.ok()) << q << "\n" << bound.status().ToString();
  }
}

TEST(QueryGeneratorTest, MixProducesVariedOperators) {
  VirtualClock clock(0);
  DvsEngine engine(clock);
  Rng rng(556);
  ASSERT_TRUE(workload::QueryGenerator::SetupSources(&engine, &rng, 3).ok());
  workload::QueryGenerator generator(&rng);
  OperatorCounts totals;
  for (int i = 0; i < 800; ++i) {
    auto select = sql::ParseSelect(generator.Generate()).value();
    sql::Binder binder(engine.catalog());
    auto bound = binder.BindSelect(*select).value();
    OperatorCounts c = CountOperators(bound.plan);
    totals.filter += c.filter;
    totals.inner_join += c.inner_join;
    totals.outer_join += c.outer_join;
    totals.aggregate += c.aggregate;
    totals.window += c.window;
    totals.union_all += c.union_all;
    totals.flatten += c.flatten;
    totals.distinct += c.distinct;
  }
  EXPECT_GT(totals.filter, 0);
  EXPECT_GT(totals.inner_join, 0);
  EXPECT_GT(totals.outer_join, 0);
  EXPECT_GT(totals.aggregate, 0);
  EXPECT_GT(totals.window, 0);
  EXPECT_GT(totals.union_all, 0);
  EXPECT_GT(totals.flatten, 0);
  EXPECT_GT(totals.distinct, 0);
}

TEST(QueryGeneratorTest, DmlKeepsEngineConsistent) {
  VirtualClock clock(kMicrosPerHour);
  DvsEngine engine(clock);
  Rng rng(557);
  ASSERT_TRUE(workload::QueryGenerator::SetupSources(&engine, &rng, 10).ok());
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(
        workload::QueryGenerator::ApplyRandomDml(&engine, &rng, 5).ok());
  }
  EXPECT_TRUE(engine.Query("SELECT count(*) AS n FROM t1").ok());
  EXPECT_TRUE(engine.Query("SELECT count(*) AS n FROM t2").ok());
}

TEST(FleetTest, SampleMatchesCalibration) {
  Rng rng(7);
  int below_5m = 0, above_16h = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    Micros lag = workload::Fleet::SampleTargetLag(&rng);
    EXPECT_GE(lag, kMicrosPerMinute);  // paper: 1 minute minimum
    if (lag < 5 * kMicrosPerMinute) ++below_5m;
    if (lag >= 16 * kMicrosPerHour) ++above_16h;
  }
  EXPECT_NEAR(static_cast<double>(below_5m) / kN, 0.20, 0.03);
  EXPECT_NEAR(static_cast<double>(above_16h) / kN, 0.25, 0.03);
}

TEST(FleetTest, BuildCreatesPipelinesAndChains) {
  VirtualClock clock(0);
  DvsEngine engine(clock);
  Rng rng(8);
  workload::FleetOptions opts;
  opts.pipelines = 20;
  opts.chain_probability = 1.0;  // force chains
  auto fleet = workload::Fleet::Build(&engine, &rng, opts);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  EXPECT_EQ(fleet.value().pipelines().size(), 20u);
  for (const auto& p : fleet.value().pipelines()) {
    EXPECT_EQ(p.dts.size(), 2u);  // chained
    EXPECT_TRUE(engine.catalog().Find(p.table).ok());
  }
  EXPECT_EQ(engine.catalog().AllDynamicTables().size(), 40u);
}

TEST(FleetTest, PumpArrivalsInsertsOnSchedule) {
  VirtualClock clock(0);
  DvsEngine engine(clock);
  Rng rng(9);
  workload::FleetOptions opts;
  opts.pipelines = 3;
  opts.chain_probability = 0;
  auto fleet = workload::Fleet::Build(&engine, &rng, opts);
  ASSERT_TRUE(fleet.ok());
  // Pump across 3x the largest arrival period: every pipeline must receive
  // at least one batch.
  Micros horizon = 0;
  for (const auto& p : fleet.value().pipelines()) {
    horizon = std::max(horizon, 3 * p.arrival_period);
  }
  ASSERT_TRUE(fleet.value().PumpArrivals(&engine, &rng, 0, horizon).ok());
  for (const auto& p : fleet.value().pipelines()) {
    auto r = engine.Query("SELECT count(*) AS n FROM " + p.table);
    ASSERT_TRUE(r.ok());
    EXPECT_GT(r.value().rows[0][0].int_value(), 0) << p.table;
  }
  // Pumping the same window again is a no-op (idempotent bookkeeping).
  auto before = engine.Query("SELECT count(*) AS n FROM " +
                             fleet.value().pipelines()[0].table);
  ASSERT_TRUE(fleet.value().PumpArrivals(&engine, &rng, 0, horizon).ok());
  auto after = engine.Query("SELECT count(*) AS n FROM " +
                            fleet.value().pipelines()[0].table);
  EXPECT_EQ(before.value().rows[0][0].int_value(),
            after.value().rows[0][0].int_value());
}

TEST(FleetTest, ScaledBuildIsDeterministicAcrossEngines) {
  // The 10k-DT scenario generator must be a pure function of (seed, options)
  // so serving experiments are reproducible at any scale: two engines, same
  // seed, byte-identical fleets.
  workload::FleetOptions opts;
  opts.pipelines = 600;
  opts.chain_probability = 0.3;
  opts.max_fan_out = 3;
  opts.churn_fraction = 0.1;

  auto build = [&](uint64_t seed) {
    auto clock = std::make_unique<VirtualClock>(0);
    auto engine = std::make_unique<DvsEngine>(*clock);
    Rng rng(seed);
    auto fleet = workload::Fleet::Build(engine.get(), &rng, opts);
    EXPECT_TRUE(fleet.ok()) << fleet.status().ToString();
    return fleet.value().AllDts();
  };
  const std::vector<workload::FleetDt> a = build(77);
  const std::vector<workload::FleetDt> b = build(77);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_GE(a.size(), 1000u);  // Zipf fan-out + chains past the 1k mark
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].target_lag, b[i].target_lag);
  }
  // A different seed produces a different fleet.
  const std::vector<workload::FleetDt> c = build(78);
  bool any_diff = c.size() != a.size();
  for (size_t i = 0; !any_diff && i < a.size(); ++i) {
    any_diff = a[i].target_lag != c[i].target_lag;
  }
  EXPECT_TRUE(any_diff);
}

TEST(FleetTest, NamesAreZeroPaddedAndSortable) {
  VirtualClock clock(0);
  DvsEngine engine(clock);
  Rng rng(11);
  workload::FleetOptions opts;
  opts.pipelines = 120;  // 3-digit width: src_000 .. src_119
  opts.chain_probability = 0;
  auto fleet = workload::Fleet::Build(&engine, &rng, opts);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  EXPECT_EQ(fleet.value().name_width(), 3);
  EXPECT_EQ(fleet.value().pipelines()[0].table, "src_000");
  EXPECT_EQ(fleet.value().pipelines()[7].dts[0].name, "dt_007");
  EXPECT_EQ(fleet.value().pipelines()[119].table, "src_119");
  EXPECT_EQ(workload::PaddedIndex(42, 5), "00042");
  EXPECT_EQ(workload::PaddedIndex(123456, 3), "123456");  // never truncates
}

TEST(FleetTest, ChurnPumpsUpdatesAndDeletes) {
  VirtualClock clock(0);
  DvsEngine engine(clock);
  Rng rng(12);
  workload::FleetOptions opts;
  opts.pipelines = 4;
  opts.chain_probability = 0;
  opts.churn_fraction = 1.0;  // every post-first batch churns
  auto fleet = workload::Fleet::Build(&engine, &rng, opts);
  ASSERT_TRUE(fleet.ok());
  Micros horizon = 0;
  for (const auto& p : fleet.value().pipelines()) {
    horizon = std::max(horizon, 6 * p.arrival_period);
  }
  ASSERT_TRUE(fleet.value().PumpArrivals(&engine, &rng, 0, horizon).ok());
  const workload::PumpStats& stats = fleet.value().pump_stats();
  EXPECT_GT(stats.insert_statements, 0u);
  EXPECT_GE(stats.rows_inserted, stats.insert_statements);
  EXPECT_GT(stats.update_statements + stats.delete_statements, 0u);
}

TEST(StarSchemaTest, BuildAppendsAndUpdates) {
  VirtualClock clock(kMicrosPerHour);
  DvsEngine engine(clock);
  Rng rng(10);
  workload::StarOptions opts;
  opts.products = 10;
  opts.customers = 20;
  opts.initial_facts = 100;
  ASSERT_TRUE(workload::BuildStarSchema(&engine, &rng, opts).ok());
  auto n = engine.Query("SELECT count(*) AS n FROM sales_enriched");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value().rows[0][0].int_value(), 100);

  ASSERT_TRUE(workload::AppendSales(&engine, &rng, 10).ok());
  ASSERT_TRUE(workload::UpdateProductFraction(&engine, &rng, 0.5).ok());
  clock.Advance(kMicrosPerMinute);
  ObjectId id = engine.ObjectIdOf("sales_enriched").value();
  auto outcome = engine.refresh_engine().Refresh(id, clock.Now());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  auto n2 = engine.Query("SELECT count(*) AS n FROM sales_enriched");
  EXPECT_EQ(n2.value().rows[0][0].int_value(), 110);
}

}  // namespace
}  // namespace dvs
