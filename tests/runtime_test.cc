// Tests for runtime/: ThreadPool basics (execution, graceful drain,
// exception capture, worker-side submission) and DagRefreshRunner
// coordination (upstream barriers, admission gates, cycle detection).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "runtime/dag_runner.h"
#include "runtime/thread_pool.h"

namespace dvs {
namespace runtime {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 100);
  EXPECT_TRUE(pool.TakeError().ok());
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Drain();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, CapturesTaskExceptionsAsStatus) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  pool.Drain();
  Status err = pool.TakeError();
  ASSERT_FALSE(err.ok());
  EXPECT_NE(err.message().find("boom"), std::string::npos);
  // The error is consumed; the pool keeps working.
  EXPECT_TRUE(pool.TakeError().ok());
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Drain();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, WorkersCanSubmitFollowUpTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&pool, &count] {
    count.fetch_add(1);
    pool.Submit([&count] { count.fetch_add(1); });
  });
  pool.Drain();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, DestructorFinishesQueuedWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }  // graceful shutdown: everything queued still runs
  EXPECT_EQ(count.load(), 50);
}

class DagRunnerTest : public ::testing::Test {
 protected:
  std::vector<size_t> FinishOrder() {
    std::lock_guard<std::mutex> lock(mu_);
    return finished_;
  }

  DagTask Recorder(size_t id, std::string gate = "") {
    DagTask t;
    t.gate = std::move(gate);
    t.work = [this, id] {
      std::lock_guard<std::mutex> lock(mu_);
      finished_.push_back(id);
    };
    return t;
  }

  std::mutex mu_;
  std::vector<size_t> finished_;
};

TEST_F(DagRunnerTest, EmptyRunIsOk) {
  ThreadPool pool(2);
  DagRefreshRunner runner(&pool);
  EXPECT_TRUE(runner.Run({}, {}).ok());
}

TEST_F(DagRunnerTest, UpstreamAlwaysFinishesFirst) {
  ThreadPool pool(4);
  DagRefreshRunner runner(&pool);
  // Diamond: 0 -> {1, 2} -> 3, repeated a few times to shake out races.
  for (int round = 0; round < 20; ++round) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      finished_.clear();
    }
    std::vector<DagTask> tasks;
    tasks.push_back(Recorder(0));
    tasks.push_back(Recorder(1));
    tasks.back().upstream = {0};
    tasks.push_back(Recorder(2));
    tasks.back().upstream = {0};
    tasks.push_back(Recorder(3));
    tasks.back().upstream = {1, 2};
    ASSERT_TRUE(runner.Run(tasks, {}).ok());

    std::vector<size_t> order = FinishOrder();
    ASSERT_EQ(order.size(), 4u);
    auto pos = [&order](size_t id) {
      return std::find(order.begin(), order.end(), id) - order.begin();
    };
    EXPECT_LT(pos(0), pos(1));
    EXPECT_LT(pos(0), pos(2));
    EXPECT_LT(pos(1), pos(3));
    EXPECT_LT(pos(2), pos(3));
  }
}

TEST_F(DagRunnerTest, GateNeverExceedsLimit) {
  ThreadPool pool(8);
  DagRefreshRunner runner(&pool);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_seen{0};
  std::vector<DagTask> tasks;
  for (int i = 0; i < 24; ++i) {
    DagTask t;
    t.gate = "wh";
    t.work = [&in_flight, &max_seen] {
      int now = in_flight.fetch_add(1) + 1;
      int prev = max_seen.load();
      while (now > prev && !max_seen.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      in_flight.fetch_sub(1);
    };
    tasks.push_back(std::move(t));
  }
  ASSERT_TRUE(runner.Run(tasks, {{"wh", 3}}).ok());
  EXPECT_LE(max_seen.load(), 3);
  ASSERT_TRUE(runner.gate_stats().count("wh"));
  EXPECT_EQ(runner.gate_stats().at("wh").limit, 3);
  EXPECT_LE(runner.gate_stats().at("wh").max_in_flight, 3);
  EXPECT_GE(runner.gate_stats().at("wh").max_in_flight, 1);
}

TEST_F(DagRunnerTest, UngatedTasksRunWithoutLimits) {
  ThreadPool pool(4);
  DagRefreshRunner runner(&pool);
  std::vector<DagTask> tasks;
  for (size_t i = 0; i < 10; ++i) tasks.push_back(Recorder(i));
  ASSERT_TRUE(runner.Run(tasks, {}).ok());
  EXPECT_EQ(FinishOrder().size(), 10u);
}

TEST_F(DagRunnerTest, DetectsFullCycle) {
  ThreadPool pool(2);
  DagRefreshRunner runner(&pool);
  std::vector<DagTask> tasks;
  tasks.push_back(Recorder(0));
  tasks.back().upstream = {1};
  tasks.push_back(Recorder(1));
  tasks.back().upstream = {0};
  Status s = runner.Run(tasks, {});
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("cycle"), std::string::npos);
  EXPECT_TRUE(FinishOrder().empty());
}

TEST_F(DagRunnerTest, PartialCycleRunsTheAcyclicPart) {
  ThreadPool pool(2);
  DagRefreshRunner runner(&pool);
  std::vector<DagTask> tasks;
  tasks.push_back(Recorder(0));  // free
  tasks.push_back(Recorder(1));
  tasks.back().upstream = {2};
  tasks.push_back(Recorder(2));
  tasks.back().upstream = {1};
  Status s = runner.Run(tasks, {});
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("cycle"), std::string::npos);
  std::vector<size_t> order = FinishOrder();
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], 0u);
}

TEST_F(DagRunnerTest, RejectsOutOfRangeEdges) {
  ThreadPool pool(1);
  DagRefreshRunner runner(&pool);
  std::vector<DagTask> tasks;
  tasks.push_back(Recorder(0));
  tasks.back().upstream = {7};
  EXPECT_FALSE(runner.Run(tasks, {}).ok());
}

TEST_F(DagRunnerTest, TaskExceptionBecomesRunError) {
  ThreadPool pool(2);
  DagRefreshRunner runner(&pool);
  std::vector<DagTask> tasks;
  DagTask t;
  t.work = [] { throw std::runtime_error("task exploded"); };
  tasks.push_back(std::move(t));
  tasks.push_back(Recorder(1));
  Status s = runner.Run(tasks, {});
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("task exploded"), std::string::npos);
  // The healthy task still ran; the run finished instead of hanging.
  EXPECT_EQ(FinishOrder().size(), 1u);
}

}  // namespace
}  // namespace runtime
}  // namespace dvs
