// Property-based differentiator sweep (TEST_P): random plan shapes over
// randomly mutated two-version sources. The invariant is the fundamental
// theorem of the differentiation framework:
//
//     result@I0 + Δ_I(plan)  ==  result@I1
//
// applied by row id, with the §6.1 merge validations enforced along the way
// (no delete-of-missing, no duplicate ids). This exercises the IVM layer
// directly — below SQL and below the refresh engine — so failures localize
// to the delta rules themselves.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "ivm/differentiator.h"

namespace dvs {
namespace {

// Mirror of the harness in ivm_test.cc, self-contained for this sweep.
class RandomSource {
 public:
  RandomSource(ObjectId id, Schema schema, Rng* rng, int base_rows)
      : id_(id), schema_(std::move(schema)) {
    for (int i = 0; i < base_rows; ++i) {
      IdRow r{next_id_++, MakeRow(rng)};
      start_.push_back(r);
      end_.push_back(std::move(r));
    }
  }

  void Mutate(Rng* rng, int ops) {
    for (int i = 0; i < ops; ++i) {
      double p = rng->NextDouble();
      if (p < 0.5 || end_.empty()) {
        end_.push_back({next_id_++, MakeRow(rng)});
      } else if (p < 0.75) {
        size_t at = static_cast<size_t>(
            rng->Uniform(0, static_cast<int64_t>(end_.size()) - 1));
        end_.erase(end_.begin() + static_cast<int64_t>(at));
      } else {
        size_t at = static_cast<size_t>(
            rng->Uniform(0, static_cast<int64_t>(end_.size()) - 1));
        end_[at].values = MakeRow(rng);
      }
    }
  }

  ObjectId id() const { return id_; }
  const Schema& schema() const { return schema_; }
  const std::vector<IdRow>& start() const { return start_; }
  const std::vector<IdRow>& end() const { return end_; }

  ChangeSet Delta() const {
    std::map<RowId, const Row*> s, e;
    for (const IdRow& r : start_) s[r.id] = &r.values;
    for (const IdRow& r : end_) e[r.id] = &r.values;
    ChangeSet out;
    for (const auto& [rid, row] : s) {
      auto it = e.find(rid);
      if (it == e.end() || !RowsEqual(*row, *it->second)) {
        out.push_back({ChangeAction::kDelete, rid, *row});
      }
    }
    for (const auto& [rid, row] : e) {
      auto it = s.find(rid);
      if (it == s.end() || !RowsEqual(*row, *it->second)) {
        out.push_back({ChangeAction::kInsert, rid, *row});
      }
    }
    return out;
  }

 private:
  Row MakeRow(Rng* rng) {
    // (k INT small-domain, v INT, s STRING small-domain)
    return {Value::Int(rng->Uniform(0, 8)), Value::Int(rng->Uniform(-50, 50)),
            Value::String("s" + std::to_string(rng->Uniform(0, 4)))};
  }

  ObjectId id_;
  Schema schema_;
  std::vector<IdRow> start_;
  std::vector<IdRow> end_;
  RowId next_id_ = 1;
};

Schema SrcSchema() {
  return Schema({{"k", DataType::kInt64},
                 {"v", DataType::kInt64},
                 {"s", DataType::kString}});
}

enum class Shape {
  kFilterProject,
  kInnerJoin,
  kLeftJoin,
  kFullJoinOfFilters,
  kGroupedAgg,
  kAggOverJoin,
  kDistinctProject,
  kWindow,
  kUnionAll,
  kFilterOverAgg,
};

PlanPtr BuildPlan(Shape shape, const RandomSource& a, const RandomSource& b) {
  PlanPtr sa = MakeScan(a.id(), "a", a.schema());
  PlanPtr sb = MakeScan(b.id(), "b", b.schema());
  switch (shape) {
    case Shape::kFilterProject:
      return MakeProject(
          MakeFilter(sa, Binary(BinaryOp::kGt, ColRef(1), LitInt(0))),
          {ColRef(0), Binary(BinaryOp::kMul, ColRef(1), LitInt(2)), ColRef(2)},
          {"k", "v2", "s"});
    case Shape::kInnerJoin:
      return MakeJoin(JoinType::kInner, sa, sb, {ColRef(0)}, {ColRef(0)});
    case Shape::kLeftJoin:
      return MakeJoin(JoinType::kLeft, sa, sb, {ColRef(0)}, {ColRef(0)});
    case Shape::kFullJoinOfFilters:
      return MakeJoin(
          JoinType::kFull,
          MakeFilter(sa, Binary(BinaryOp::kGe, ColRef(1), LitInt(-10))),
          MakeFilter(sb, Binary(BinaryOp::kLe, ColRef(1), LitInt(10))),
          {ColRef(0)}, {ColRef(0)});
    case Shape::kGroupedAgg:
      return MakeAggregate(sa, {ColRef(0)},
                           {Agg(AggFunc::kCountStar, {}),
                            Agg(AggFunc::kSum, {ColRef(1)}),
                            Agg(AggFunc::kMax, {ColRef(1)})},
                           {"k", "n", "sv", "mx"});
    case Shape::kAggOverJoin:
      return MakeAggregate(
          MakeJoin(JoinType::kInner, sa, sb, {ColRef(0)}, {ColRef(0)}),
          {ColRef(2)}, {Agg(AggFunc::kCountStar, {}),
                        Agg(AggFunc::kSum, {ColRef(4)})},
          {"s", "n", "sv"});
    case Shape::kDistinctProject:
      return MakeDistinct(MakeProject(sa, {ColRef(0), ColRef(2)}, {"k", "s"}));
    case Shape::kWindow:
      return MakeWindow(sa, {ColRef(2)}, {{ColRef(1), true}},
                        {Win(WindowFunc::kRowNumber, {}),
                         Win(WindowFunc::kSum, {ColRef(1)})},
                        {"rn", "running"});
    case Shape::kUnionAll:
      return MakeUnionAll(
          MakeProject(sa, {ColRef(0), ColRef(1)}, {"k", "v"}),
          MakeProject(sb, {ColRef(0), ColRef(1)}, {"k", "v"}));
    case Shape::kFilterOverAgg:
      return MakeFilter(
          MakeAggregate(sa, {ColRef(0)},
                        {Agg(AggFunc::kCountStar, {}),
                         Agg(AggFunc::kSum, {ColRef(1)})},
                        {"k", "n", "sv"}),
          Binary(BinaryOp::kGt, ColRef(1), LitInt(1)));
  }
  return nullptr;
}

struct SweepParams {
  uint64_t seed;
  Shape shape;
};

class DifferentiatorSweep : public ::testing::TestWithParam<SweepParams> {};

TEST_P(DifferentiatorSweep, DeltaEqualsStateDifference) {
  const SweepParams params = GetParam();
  Rng rng(params.seed * 7919 + static_cast<uint64_t>(params.shape));

  RandomSource a(1, SrcSchema(), &rng, static_cast<int>(rng.Uniform(0, 25)));
  RandomSource b(2, SrcSchema(), &rng, static_cast<int>(rng.Uniform(0, 25)));
  a.Mutate(&rng, static_cast<int>(rng.Uniform(0, 12)));
  b.Mutate(&rng, static_cast<int>(rng.Uniform(0, 12)));

  PlanPtr plan = BuildPlan(params.shape, a, b);
  ASSERT_NE(plan, nullptr);

  DeltaContext ctx;
  ctx.resolve_at_start = [&](ObjectId id) -> Result<std::vector<IdRow>> {
    return id == 1 ? a.start() : b.start();
  };
  ctx.resolve_at_end = [&](ObjectId id) -> Result<std::vector<IdRow>> {
    return id == 1 ? a.end() : b.end();
  };
  ctx.resolve_delta = [&](ObjectId id) -> Result<ChangeSet> {
    return id == 1 ? a.Delta() : b.Delta();
  };

  auto delta = Differentiate(*plan, ctx);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();

  // Materialize both ends via full execution.
  auto execute = [&](bool at_end) {
    ExecContext ec;
    ec.resolve_scan = at_end ? ctx.resolve_at_end : ctx.resolve_at_start;
    auto r = ExecutePlan(*plan, ec);
    EXPECT_TRUE(r.ok());
    return r.ok() ? r.take() : std::vector<IdRow>{};
  };

  std::map<RowId, Row> state;
  for (IdRow& r : execute(false)) {
    ASSERT_TRUE(state.emplace(r.id, std::move(r.values)).second)
        << "duplicate id in I0 result";
  }
  // Apply the delta with merge-validation semantics.
  for (const ChangeRow& c : delta.value().changes) {
    if (c.action == ChangeAction::kDelete) {
      auto it = state.find(c.row_id);
      ASSERT_NE(it, state.end())
          << "delete of missing row id (validation 3 of §6.1)";
      ASSERT_TRUE(RowsEqual(it->second, c.values));
      state.erase(it);
    } else {
      ASSERT_TRUE(state.emplace(c.row_id, c.values).second)
          << "insert of duplicate row id (validation 2 of §6.1)";
    }
  }
  std::map<RowId, Row> expected;
  for (IdRow& r : execute(true)) expected[r.id] = std::move(r.values);

  ASSERT_EQ(state.size(), expected.size());
  for (const auto& [rid, row] : expected) {
    auto it = state.find(rid);
    ASSERT_NE(it, state.end());
    EXPECT_TRUE(RowsEqual(it->second, row))
        << RowToString(it->second) << " vs " << RowToString(row);
  }
}

std::vector<SweepParams> MakeSweep() {
  std::vector<SweepParams> out;
  const Shape shapes[] = {
      Shape::kFilterProject,    Shape::kInnerJoin,   Shape::kLeftJoin,
      Shape::kFullJoinOfFilters, Shape::kGroupedAgg, Shape::kAggOverJoin,
      Shape::kDistinctProject,  Shape::kWindow,      Shape::kUnionAll,
      Shape::kFilterOverAgg,
  };
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    for (Shape s : shapes) out.push_back({seed, s});
  }
  return out;
}

const char* ShapeName(Shape s) {
  switch (s) {
    case Shape::kFilterProject: return "FilterProject";
    case Shape::kInnerJoin: return "InnerJoin";
    case Shape::kLeftJoin: return "LeftJoin";
    case Shape::kFullJoinOfFilters: return "FullJoinOfFilters";
    case Shape::kGroupedAgg: return "GroupedAgg";
    case Shape::kAggOverJoin: return "AggOverJoin";
    case Shape::kDistinctProject: return "DistinctProject";
    case Shape::kWindow: return "Window";
    case Shape::kUnionAll: return "UnionAll";
    case Shape::kFilterOverAgg: return "FilterOverAgg";
  }
  return "Unknown";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DifferentiatorSweep, ::testing::ValuesIn(MakeSweep()),
    [](const ::testing::TestParamInfo<SweepParams>& info) {
      return std::string(ShapeName(info.param.shape)) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace dvs
