// Integration of the §4 theory with the running engine: the
// IsolationRecorder captures actual DML / refresh / query activity as an
// Adya history with derivations, and DetectPhenomena audits it.
//
// The headline test reproduces Figure 2's read skew from *live* engine
// operations: a query that mixes a stale DT with its fresh base table (the
// Read Committed case of §4) produces a G-single cycle, while querying
// after a refresh — or querying the DT alone (the Snapshot Isolation case)
// — stays clean.

#include <gtest/gtest.h>

#include "dt/engine.h"
#include "isolation/dsg.h"

namespace dvs {
namespace {

class RecorderTest : public ::testing::Test {
 protected:
  RecorderTest() : clock_(kMicrosPerHour), engine_(clock_) {
    engine_.EnableIsolationRecording();
  }

  void Exec(const std::string& sql) {
    auto r = engine_.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }

  isolation::PhenomenaReport Audit() {
    return isolation::DetectPhenomena(engine_.recorder()->history());
  }

  VirtualClock clock_;
  DvsEngine engine_;
};

TEST_F(RecorderTest, DmlBecomesWrites) {
  Exec("CREATE TABLE t (v INT)");
  Exec("INSERT INTO t VALUES (1)");
  Exec("UPDATE t SET v = 2");
  const isolation::History& h = engine_.recorder()->history();
  // Two write events (insert, update), each its own committed transaction.
  int writes = 0;
  for (const auto& e : h.events()) {
    if (e.kind == isolation::EventKind::kWrite) ++writes;
  }
  EXPECT_EQ(writes, 2);
  auto order = h.VersionOrder("t");
  ASSERT_EQ(order.size(), 2u);
  EXPECT_LT(order[0].version, order[1].version);
}

TEST_F(RecorderTest, RefreshBecomesDerivation) {
  Exec("CREATE TABLE t (v INT)");
  Exec("INSERT INTO t VALUES (1)");
  Exec("CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT v FROM t");
  const isolation::History& h = engine_.recorder()->history();
  int derives = 0;
  for (const auto& e : h.events()) {
    if (e.kind == isolation::EventKind::kDerive) {
      ++derives;
      EXPECT_EQ(e.target.object, "d");
      ASSERT_EQ(e.inputs.size(), 1u);
      EXPECT_EQ(e.inputs[0].object, "t");
    }
  }
  EXPECT_EQ(derives, 1);  // the initialization refresh
}

TEST_F(RecorderTest, LiveReadSkewDetectedAsGSingle) {
  Exec("CREATE TABLE accounts (id INT, balance INT)");
  Exec("INSERT INTO accounts VALUES (1, 100)");
  Exec("CREATE DYNAMIC TABLE by_id TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT id, sum(balance) AS total FROM accounts GROUP BY id");

  // Base table moves on; the DT is now stale.
  clock_.Advance(kMicrosPerMinute);
  Exec("UPDATE accounts SET balance = 500 WHERE id = 1");

  // Clean so far.
  EXPECT_FALSE(Audit().g2);

  // The §4 Read Committed case: one query reads the stale DT *and* the
  // fresh base table. Application-level read skew.
  Exec("SELECT b.total, a.balance FROM by_id b "
       "JOIN accounts a ON b.id = a.id");

  isolation::PhenomenaReport report = Audit();
  EXPECT_TRUE(report.g2);
  EXPECT_TRUE(report.g_single);
  EXPECT_FALSE(report.g0);
  EXPECT_FALSE(report.g1a);
  EXPECT_FALSE(report.g1b);
  // Read skew breaks PL-2+ / SI but not PL-2 — exactly the paper's stated
  // guarantee for mixed reads.
  EXPECT_EQ(isolation::StrongestLevel(report), isolation::PlLevel::kPL2);
}

TEST_F(RecorderTest, RefreshBeforeQueryKeepsHistoryClean) {
  Exec("CREATE TABLE accounts (id INT, balance INT)");
  Exec("INSERT INTO accounts VALUES (1, 100)");
  Exec("CREATE DYNAMIC TABLE by_id TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT id, sum(balance) AS total FROM accounts GROUP BY id");
  clock_.Advance(kMicrosPerMinute);
  Exec("UPDATE accounts SET balance = 500 WHERE id = 1");
  // Refresh first: DT and base table are mutually consistent again.
  Exec("ALTER DYNAMIC TABLE by_id REFRESH");
  Exec("SELECT b.total, a.balance FROM by_id b "
       "JOIN accounts a ON b.id = a.id");

  isolation::PhenomenaReport report = Audit();
  EXPECT_FALSE(report.g2) << "no skew after refresh";
  EXPECT_EQ(isolation::StrongestLevel(report), isolation::PlLevel::kPL3);
}

TEST_F(RecorderTest, SingleDtReadIsSkewFree) {
  Exec("CREATE TABLE accounts (id INT, balance INT)");
  Exec("INSERT INTO accounts VALUES (1, 100)");
  Exec("CREATE DYNAMIC TABLE by_id TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT id, sum(balance) AS total FROM accounts GROUP BY id");
  clock_.Advance(kMicrosPerMinute);
  Exec("UPDATE accounts SET balance = 500 WHERE id = 1");
  // The §4 Snapshot Isolation case: reading only the (stale) DT is a
  // perfectly consistent snapshot — no phenomena.
  Exec("SELECT * FROM by_id");

  isolation::PhenomenaReport report = Audit();
  EXPECT_FALSE(report.g2);
  EXPECT_EQ(isolation::StrongestLevel(report), isolation::PlLevel::kPL3);
}

TEST_F(RecorderTest, StackedDtDerivationChainsCompose) {
  Exec("CREATE TABLE t (v INT)");
  Exec("INSERT INTO t VALUES (1)");
  Exec("CREATE DYNAMIC TABLE a TARGET_LAG = DOWNSTREAM WAREHOUSE = wh "
       "AS SELECT v FROM t");
  Exec("CREATE DYNAMIC TABLE b TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT v FROM a");
  clock_.Advance(kMicrosPerMinute);
  Exec("UPDATE t SET v = 2");
  // Query the stale second-level DT together with the fresh base table: the
  // skew traverses TWO derivation hops (b derives from a derives from t).
  Exec("SELECT b.v, t.v FROM b JOIN t ON b.v = b.v AND t.v = t.v");

  isolation::PhenomenaReport report = Audit();
  EXPECT_TRUE(report.g2) << "skew must be visible through derivation chains";
}

}  // namespace
}  // namespace dvs
