// Tests for the precomputed-hash key infrastructure (common/key_hash.h) and
// the HashRow digest it builds on.

#include <gtest/gtest.h>

#include "common/key_hash.h"
#include "exec/executor.h"
#include "plan/logical_plan.h"
#include "types/row.h"

namespace dvs {
namespace {

// ---- HashRow digest properties ----

TEST(HashRowTest, TypeTagsDisambiguateStructurallyDistinctRows) {
  // Int(1) and Timestamp(1) carry the same payload bits but are structurally
  // different rows; the digest must separate them.
  EXPECT_NE(HashRow({Value::Int(1)}), HashRow({Value::Timestamp(1)}));
  EXPECT_NE(HashRow({Value::Int(1)}), HashRow({Value::Bool(true)}));
  EXPECT_NE(HashRow({Value::Int(0)}), HashRow({Value::Bool(false)}));
  EXPECT_NE(HashRow({Value::Int(0)}), HashRow({Value::Null()}));
  EXPECT_NE(HashRow({Value::String("1")}), HashRow({Value::Int(1)}));
}

TEST(HashRowTest, ConsistentWithStructuralEquality) {
  // Int(1) and Double(1.0) compare equal (cross-numeric), so their digests
  // must agree — hash maps would otherwise split equal keys.
  Row a = {Value::Int(1)};
  Row b = {Value::Double(1.0)};
  ASSERT_TRUE(RowsEqual(a, b));
  EXPECT_EQ(HashRow(a), HashRow(b));
}

TEST(HashRowTest, LengthAndOrderSensitive) {
  EXPECT_NE(HashRow({Value::Int(1), Value::Int(2)}),
            HashRow({Value::Int(2), Value::Int(1)}));
  EXPECT_NE(HashRow({Value::Int(1)}), HashRow({Value::Int(1), Value::Null()}));
  EXPECT_NE(HashRow({}), HashRow({Value::Null()}));
}

TEST(RowLessTest, MatchesValueCompareLexicographically) {
  EXPECT_TRUE(RowLess({Value::Int(1)}, {Value::Int(2)}));
  EXPECT_FALSE(RowLess({Value::Int(2)}, {Value::Int(1)}));
  EXPECT_FALSE(RowLess({Value::Int(1)}, {Value::Int(1)}));
  EXPECT_TRUE(RowLess({Value::Int(1)}, {Value::Int(1), Value::Int(0)}));
  EXPECT_TRUE(RowLess({Value::Null()}, {Value::Int(0)}));  // NULL sorts first
}

// ---- HashedKey / KeyedIndex ----

TEST(KeyedIndexTest, HashedKeyComputesDigestOnce) {
  Row key = {Value::Int(7), Value::String("x")};
  HashedKey hk(key);
  EXPECT_EQ(hk.digest, HashRow(key));
  EXPECT_TRUE(RowsEqual(hk.values, key));
}

TEST(KeyedIndexTest, ForcedCollisionKeysStayDistinct) {
  // Two different keys forced onto the SAME digest must still behave as two
  // keys: equality falls back to RowsEqual on digest ties.
  Row k1 = {Value::Int(1)};
  Row k2 = {Value::Int(2)};
  constexpr uint64_t kDigest = 42;

  KeyedIndex<int> index;
  index.emplace(HashedKey(k1, kDigest), 100);
  index.emplace(HashedKey(k2, kDigest), 200);
  ASSERT_EQ(index.size(), 2u);

  auto it1 = index.find(HashedKeyRef{&k1, kDigest});
  auto it2 = index.find(HashedKeyRef{&k2, kDigest});
  ASSERT_NE(it1, index.end());
  ASSERT_NE(it2, index.end());
  EXPECT_EQ(it1->second, 100);
  EXPECT_EQ(it2->second, 200);

  // A third key on the same digest is absent.
  Row k3 = {Value::Int(3)};
  EXPECT_EQ(index.find(HashedKeyRef{&k3, kDigest}), index.end());
}

TEST(KeyedIndexTest, TotalCollisionGroupingStillSeparatesKeys) {
  // Degenerate digest function (everything collides): grouping through the
  // index must still distinguish all keys.
  KeyedIndex<std::vector<int>> groups;
  for (int i = 0; i < 100; ++i) {
    Row key = {Value::Int(i % 10)};
    auto it = groups.find(HashedKeyRef{&key, 0});
    if (it == groups.end()) {
      it = groups.emplace(HashedKey(std::move(key), 0), std::vector<int>{})
               .first;
    }
    it->second.push_back(i);
  }
  ASSERT_EQ(groups.size(), 10u);
  for (const auto& [key, members] : groups) {
    ASSERT_EQ(members.size(), 10u);
    for (int m : members) {
      EXPECT_EQ(m % 10, static_cast<int>(key.values[0].int_value()));
    }
  }
}

TEST(KeyedIndexTest, MixedDigestAndRefProbes) {
  KeyedSet set;
  Row a = {Value::String("alpha"), Value::Int(1)};
  Row b = {Value::String("beta"), Value::Int(2)};
  set.insert(HashedKey(a));
  EXPECT_NE(set.find(HashedKeyRef{&a, HashRow(a)}), set.end());
  EXPECT_EQ(set.find(HashedKeyRef{&b, HashRow(b)}), set.end());
  // Wrong digest for the right row must miss: digests are part of identity.
  EXPECT_EQ(set.find(HashedKeyRef{&a, HashRow(a) + 1}), set.end());
}

// ---- KeyExtractor over real expressions ----

TEST(KeyExtractorTest, ColumnRefFastPathMatchesEvalKey) {
  std::vector<ExprPtr> exprs;
  exprs.push_back(ColRef(1, "name", DataType::kString));
  exprs.push_back(ColRef(0, "id", DataType::kInt64));

  EvalContext ctx;
  KeyExtractor ex(exprs, ctx);
  Row row = {Value::Int(5), Value::String("s")};

  ASSERT_TRUE(ex.Extract(row).ok());
  auto via_eval = EvalKey(exprs, row, ctx);
  ASSERT_TRUE(via_eval.ok());
  EXPECT_TRUE(RowsEqual(ex.key(), via_eval.value()));
  EXPECT_EQ(ex.digest(), HashRow(via_eval.value()));
  EXPECT_FALSE(ex.has_null());

  // Scratch reuse across rows: a second extraction fully replaces the first.
  Row row2 = {Value::Int(9), Value::Null()};
  ASSERT_TRUE(ex.Extract(row2).ok());
  EXPECT_TRUE(ex.has_null());
  EXPECT_EQ(ex.digest(), HashRow({Value::Null(), Value::Int(9)}));
}

}  // namespace
}  // namespace dvs
