// Tests for the concurrent refresh runtime end to end: running the same
// workload with worker_threads = 0 (serial) and worker_threads = 4 must
// produce identical refresh logs (timestamps, actions, rows_processed,
// skip/failure flags, lag accounting), identical final DT contents, and
// identical warehouse billing — parallel execution is an implementation
// detail, not a semantics change. Plus admission-gate coverage: co-located
// DTs never exceed their warehouse's configured concurrency.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "sched/scheduler.h"

namespace dvs {
namespace {

/// Sorted, printable snapshot of a DT's rows (order-insensitive compare).
std::vector<std::string> Contents(DvsEngine& engine, const std::string& dt) {
  auto q = engine.Query("SELECT * FROM " + dt);
  if (!q.ok()) return {"<error: " + q.status().ToString() + ">"};
  std::vector<std::string> rows;
  rows.reserve(q.value().rows.size());
  for (const Row& r : q.value().rows) {
    std::string line;
    for (const Value& v : r) line += v.ToString() + "|";
    rows.push_back(std::move(line));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// One full workload run: a diamond (a1, a2 -> b -> c), an independent
/// sibling layer, and a DT that starts failing mid-run (exercising failed
/// records, auto-suspend, and downstream upstream-missing skips).
struct WorkloadResult {
  std::vector<RefreshRecord> log;
  std::map<std::string, std::vector<std::string>> contents;
  std::map<std::string, Micros> billed;
  std::map<std::string, int> gate_peaks;
};

WorkloadResult RunWorkload(int worker_threads) {
  VirtualClock clock(0);
  DvsEngine engine(clock);
  // Shared warehouse with concurrency 2 for the sibling layer; the diamond
  // gets its own warehouses.
  engine.warehouses().GetOrCreate("whs", 2);

  auto exec = [&engine](const std::string& sql) {
    auto r = engine.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  };
  exec("CREATE TABLE src1 (k INT, v INT)");
  exec("CREATE TABLE src2 (k INT, v INT)");
  exec("INSERT INTO src1 VALUES (1, 10), (2, 20), (3, 30)");
  exec("INSERT INTO src2 VALUES (1, 5)");

  exec("CREATE DYNAMIC TABLE a1 TARGET_LAG = '4 minutes' WAREHOUSE = whs "
       "INITIALIZE = ON_SCHEDULE AS "
       "SELECT k, sum(v) AS sv FROM src1 GROUP BY ALL");
  exec("CREATE DYNAMIC TABLE a2 TARGET_LAG = '4 minutes' WAREHOUSE = whs "
       "INITIALIZE = ON_SCHEDULE AS SELECT k, v FROM src1 WHERE v >= 20");
  exec("CREATE DYNAMIC TABLE a3 TARGET_LAG = '4 minutes' WAREHOUSE = whs "
       "INITIALIZE = ON_SCHEDULE AS SELECT k, v + 1 AS v1 FROM src1");
  exec("CREATE DYNAMIC TABLE b TARGET_LAG = '8 minutes' WAREHOUSE = whb "
       "INITIALIZE = ON_SCHEDULE AS "
       "SELECT a1.k AS k, a1.sv AS sv, a2.v AS v "
       "FROM a1 JOIN a2 ON a1.k = a2.k");
  exec("CREATE DYNAMIC TABLE c TARGET_LAG = '8 minutes' WAREHOUSE = whc "
       "INITIALIZE = ON_SCHEDULE AS SELECT k, sv + v AS total FROM b");
  // Fails once src2 contains v = 0 (division by zero is a user error:
  // failure accounting then auto-suspend, §3.3.3).
  exec("CREATE DYNAMIC TABLE d TARGET_LAG = '4 minutes' WAREHOUSE = whd "
       "INITIALIZE = ON_SCHEDULE AS SELECT k, 100 / v AS q FROM src2");
  // Downstream of the failing DT: once d fails, e has no upstream version
  // for its data timestamps and must log upstream-missing skips.
  exec("CREATE DYNAMIC TABLE e TARGET_LAG = '8 minutes' WAREHOUSE = whe "
       "INITIALIZE = ON_SCHEDULE AS SELECT k, q * 2 AS q2 FROM d");

  SchedulerOptions opts;
  opts.worker_threads = worker_threads;
  Scheduler sched(&engine, &clock, opts);

  for (int round = 0; round < 10; ++round) {
    int base = 100 + round * 10;
    exec("INSERT INTO src1 VALUES (" + std::to_string(base) + ", " +
         std::to_string(base * 2) + ")");
    if (round == 4) {
      exec("INSERT INTO src2 VALUES (9, 0)");  // d fails from here on
    } else {
      exec("INSERT INTO src2 VALUES (" + std::to_string(base) + ", " +
           std::to_string(round + 1) + ")");
    }
    sched.RunUntil((round + 1) * 2 * kMicrosPerMinute);
  }

  WorkloadResult out;
  out.log = sched.log();
  for (const char* dt : {"a1", "a2", "a3", "b", "c", "d", "e"}) {
    out.contents[dt] = Contents(engine, dt);
  }
  for (const auto& [name, wh] : engine.warehouses().all()) {
    out.billed[name] = wh->billed();
  }
  out.gate_peaks = sched.max_gate_occupancy();
  return out;
}

void ExpectSameLogs(const std::vector<RefreshRecord>& serial,
                    const std::vector<RefreshRecord>& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    const RefreshRecord& s = serial[i];
    const RefreshRecord& p = parallel[i];
    EXPECT_EQ(s.dt, p.dt) << "record " << i;
    EXPECT_EQ(s.dt_name, p.dt_name) << "record " << i;
    EXPECT_EQ(s.data_timestamp, p.data_timestamp) << "record " << i;
    EXPECT_EQ(s.start_time, p.start_time) << "record " << i << " " << s.dt_name;
    EXPECT_EQ(s.end_time, p.end_time) << "record " << i << " " << s.dt_name;
    EXPECT_EQ(s.action, p.action) << "record " << i << " " << s.dt_name;
    EXPECT_EQ(s.skipped, p.skipped) << "record " << i << " " << s.dt_name;
    EXPECT_EQ(s.failed, p.failed) << "record " << i << " " << s.dt_name;
    EXPECT_EQ(s.error, p.error) << "record " << i << " " << s.dt_name;
    EXPECT_EQ(s.error_code, p.error_code) << "record " << i << " " << s.dt_name;
    EXPECT_EQ(s.attempts, p.attempts) << "record " << i << " " << s.dt_name;
    EXPECT_EQ(s.retry_backoff, p.retry_backoff)
        << "record " << i << " " << s.dt_name;
    EXPECT_EQ(s.rows_processed, p.rows_processed)
        << "record " << i << " " << s.dt_name;
    EXPECT_EQ(s.changes_applied, p.changes_applied)
        << "record " << i << " " << s.dt_name;
    EXPECT_EQ(s.dt_row_count, p.dt_row_count)
        << "record " << i << " " << s.dt_name;
    EXPECT_EQ(s.peak_lag, p.peak_lag) << "record " << i << " " << s.dt_name;
    EXPECT_EQ(s.trough_lag, p.trough_lag)
        << "record " << i << " " << s.dt_name;
  }
}

TEST(ParallelRefreshTest, ParallelAndSerialProduceIdenticalResults) {
  WorkloadResult serial = RunWorkload(0);
  WorkloadResult parallel = RunWorkload(4);

  // The workload actually exercised the interesting paths.
  bool saw_failure = false, saw_skip = false, saw_incremental = false;
  for (const RefreshRecord& r : serial.log) {
    saw_failure = saw_failure || r.failed;
    saw_skip = saw_skip || r.skipped;
    saw_incremental =
        saw_incremental || r.action == RefreshAction::kIncremental;
  }
  EXPECT_TRUE(saw_failure);
  EXPECT_TRUE(saw_skip);
  EXPECT_TRUE(saw_incremental);
  ASSERT_GT(serial.log.size(), 20u);

  ExpectSameLogs(serial.log, parallel.log);
  EXPECT_EQ(serial.contents, parallel.contents);
  EXPECT_EQ(serial.billed, parallel.billed);

  // Parallel mode ran through the gates; serial never touches them.
  EXPECT_TRUE(serial.gate_peaks.empty());
  for (const auto& [gate, peak] : parallel.gate_peaks) {
    (void)gate;
    EXPECT_GE(peak, 1);
  }
  // The shared warehouse (concurrency 2) was never over-admitted.
  auto whs = parallel.gate_peaks.find("whs");
  ASSERT_NE(whs, parallel.gate_peaks.end());
  EXPECT_LE(whs->second, 2);
}

TEST(ParallelRefreshTest, SingleWorkerMatchesSerialToo) {
  // worker_threads = 1 exercises the full runner machinery with zero
  // parallelism — a good bisector when the equivalence test above fails.
  WorkloadResult serial = RunWorkload(0);
  WorkloadResult one = RunWorkload(1);
  ExpectSameLogs(serial.log, one.log);
  EXPECT_EQ(serial.contents, one.contents);
  EXPECT_EQ(serial.billed, one.billed);
}

class AdmissionGateTest : public ::testing::Test {
 protected:
  /// Runs `n_dts` co-located sibling DTs over one shared source for a few
  /// ticks and returns the scheduler + engine state for inspection.
  struct GateRun {
    std::map<std::string, int> gate_peaks;
    Micros billed = 0;
    std::vector<RefreshRecord> log;
  };

  GateRun Run(int worker_threads, int concurrency, int n_dts = 8) {
    VirtualClock clock(0);
    DvsEngine engine(clock);
    Warehouse* wh = engine.warehouses().GetOrCreate("whgate", 1);
    wh->set_concurrency(concurrency);

    auto exec = [&engine](const std::string& sql) {
      auto r = engine.Execute(sql);
      ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    };
    exec("CREATE TABLE src (k INT, v INT)");
    for (int i = 0; i < 40; ++i) {
      exec("INSERT INTO src VALUES (" + std::to_string(i) + ", " +
           std::to_string(i * 7) + ")");
    }
    for (int i = 0; i < n_dts; ++i) {
      exec("CREATE DYNAMIC TABLE g" + std::to_string(i) +
           " TARGET_LAG = '2 minutes' WAREHOUSE = whgate "
           "INITIALIZE = ON_SCHEDULE AS "
           "SELECT k % " + std::to_string(i + 2) +
           " AS grp, sum(v) AS sv, count(*) AS n FROM src GROUP BY ALL");
    }

    SchedulerOptions opts;
    opts.worker_threads = worker_threads;
    Scheduler sched(&engine, &clock, opts);
    for (int round = 0; round < 4; ++round) {
      exec("INSERT INTO src VALUES (" + std::to_string(1000 + round) + ", " +
           std::to_string(round) + ")");
      sched.RunUntil((round + 1) * 2 * kMicrosPerMinute);
    }

    GateRun out;
    out.gate_peaks = sched.max_gate_occupancy();
    out.billed = wh->billed();
    out.log = sched.log();
    return out;
  }
};

TEST_F(AdmissionGateTest, CoLocatedDtsNeverExceedWarehouseConcurrency) {
  GateRun run = Run(/*worker_threads=*/4, /*concurrency=*/2);
  auto peak = run.gate_peaks.find("whgate");
  ASSERT_NE(peak, run.gate_peaks.end());
  EXPECT_GE(peak->second, 1);
  EXPECT_LE(peak->second, 2);
}

TEST_F(AdmissionGateTest, ConcurrencyOneFullySerializesCoLocatedDts) {
  GateRun run = Run(/*worker_threads=*/4, /*concurrency=*/1);
  auto peak = run.gate_peaks.find("whgate");
  ASSERT_NE(peak, run.gate_peaks.end());
  EXPECT_EQ(peak->second, 1);
}

TEST_F(AdmissionGateTest, BilledTimeMatchesSerialCostModel) {
  // Virtual-time billing is computed in the deterministic merge phase, so
  // the parallel gates must not change what the warehouse bills — the same
  // serialized slots and sub-threshold idle as scheduler_test.cc expects.
  GateRun serial = Run(/*worker_threads=*/0, /*concurrency=*/2);
  GateRun parallel = Run(/*worker_threads=*/4, /*concurrency=*/2);
  EXPECT_GT(serial.billed, 0);
  EXPECT_EQ(serial.billed, parallel.billed);
  ASSERT_EQ(serial.log.size(), parallel.log.size());
  for (size_t i = 0; i < serial.log.size(); ++i) {
    EXPECT_EQ(serial.log[i].start_time, parallel.log[i].start_time);
    EXPECT_EQ(serial.log[i].end_time, parallel.log[i].end_time);
  }
}

}  // namespace
}  // namespace dvs
