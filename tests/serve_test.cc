// Tests for serve/: the concurrent snapshot-read front end. The §5 contract
// under test — a DT read resolves to the latest committed refresh at or
// before its timestamp and is byte-identical to a quiesced re-read of the
// same resolved version — must hold while refreshes are committing, while
// the batch cache is serving converted partitions, and after retention
// prunes versions a reader still has pinned. Run under TSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "serve/latency.h"
#include "serve/query_service.h"
#include "storage/batch_scan.h"

namespace dvs {
namespace {

void Exec(DvsEngine& engine, const std::string& sql) {
  auto r = engine.Execute(sql);
  ASSERT_TRUE(r.ok()) << sql << "\n" << r.status().ToString();
}

RefreshOutcome MustRefresh(DvsEngine& engine, const std::string& dt,
                           Micros ts) {
  auto r = engine.refresh_engine().Refresh(engine.ObjectIdOf(dt).value(), ts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.value();
}

TEST(ServeTest, ReadResolutionRule) {
  VirtualClock clock(0);
  DvsEngine engine(clock);
  Exec(engine, "CREATE TABLE src (k INT, v INT)");
  Exec(engine, "INSERT INTO src VALUES (1, 10), (2, 20)");
  Exec(engine,
       "CREATE DYNAMIC TABLE dt TARGET_LAG = '10 seconds' WAREHOUSE = wh "
       "INITIALIZE = ON_SCHEDULE AS SELECT k, v FROM src");
  const ObjectId dt = engine.ObjectIdOf("dt").value();

  clock.AdvanceTo(10 * kMicrosPerSecond);
  MustRefresh(engine, "dt", clock.Now());
  Exec(engine, "INSERT INTO src VALUES (3, 30)");
  clock.AdvanceTo(20 * kMicrosPerSecond);
  MustRefresh(engine, "dt", clock.Now());

  serve::QueryService service(&engine);
  serve::ReadQuery q;
  q.table = dt;
  q.kind = serve::ReadKind::kScan;

  // Before the first refresh: nothing servable.
  q.read_ts = 9 * kMicrosPerSecond;
  auto before = service.Execute(q);
  ASSERT_FALSE(before.ok());
  EXPECT_EQ(before.status().code(), StatusCode::kFailedPrecondition);

  // Between the refreshes: resolves to the t=10s refresh (2 rows), even
  // though src already holds the third row.
  q.read_ts = 15 * kMicrosPerSecond;
  auto mid = service.Execute(q);
  ASSERT_TRUE(mid.ok()) << mid.status().ToString();
  EXPECT_EQ(mid.value().resolved_refresh_ts, 10 * kMicrosPerSecond);
  EXPECT_EQ(mid.value().rows_scanned, 2u);

  // After both: resolves to the t=20s refresh (3 rows).
  q.read_ts = 25 * kMicrosPerSecond;
  auto after = service.Execute(q);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().resolved_refresh_ts, 20 * kMicrosPerSecond);
  EXPECT_EQ(after.value().rows_scanned, 3u);
  EXPECT_NE(after.value().digest, mid.value().digest);
}

TEST(ServeTest, PointLookupMaterializesMatches) {
  VirtualClock clock(0);
  DvsEngine engine(clock);
  Exec(engine, "CREATE TABLE t (k INT, name STRING)");
  Exec(engine, "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (2, 'c')");
  clock.AdvanceTo(kMicrosPerSecond);

  serve::QueryService service(&engine);
  serve::ReadQuery q;
  q.table = engine.ObjectIdOf("t").value();
  q.read_ts = clock.Now();
  q.kind = serve::ReadKind::kPointLookup;
  q.key_column = 0;
  q.key = Value::Int(2);
  auto r = service.Execute(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().rows_scanned, 3u);
  EXPECT_EQ(r.value().rows_matched, 2u);
  ASSERT_EQ(r.value().rows.size(), 2u);
  EXPECT_EQ(r.value().rows[0][1].string_value(), "b");
  EXPECT_EQ(r.value().rows[1][1].string_value(), "c");

  // String-key lookup through the string-lane fast path.
  q.key_column = 1;
  q.key = Value::String("a");
  auto s = service.Execute(q);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().rows_matched, 1u);
  EXPECT_EQ(s.value().rows[0][0].int_value(), 1);
}

// The tentpole invariant: readers scanning *while* refreshes commit get
// results byte-identical to a quiesced re-read at the refresh timestamp
// their read resolved to.
TEST(ServeTest, ConcurrentReadsMatchQuiescedOracle) {
  VirtualClock clock(0);
  DvsEngine engine(clock);
  Exec(engine, "CREATE TABLE src (k INT, v INT)");
  Exec(engine, "INSERT INTO src VALUES (0, 0)");
  Exec(engine,
       "CREATE DYNAMIC TABLE dt TARGET_LAG = '1 seconds' WAREHOUSE = wh "
       "INITIALIZE = ON_SCHEDULE AS SELECT k, v * 2 AS v2 FROM src");
  const ObjectId dt = engine.ObjectIdOf("dt").value();
  clock.AdvanceTo(kMicrosPerSecond);
  MustRefresh(engine, "dt", clock.Now());

  serve::QueryService service(&engine);
  std::atomic<bool> stop{false};
  struct Sample {
    Micros resolved = 0;
    uint64_t digest = 0;
    uint64_t rows = 0;
    int64_t sum = 0;
  };
  constexpr int kReaders = 4;
  std::vector<std::vector<Sample>> samples(kReaders);
  std::atomic<uint64_t> total_samples{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      serve::ReadQuery q;
      q.table = dt;
      q.kind = serve::ReadKind::kScan;
      q.sum_column = 1;
      while (!stop.load(std::memory_order_acquire)) {
        q.read_ts = clock.Now();
        auto r = service.Execute(q);
        if (!r.ok()) continue;  // only pre-first-refresh misses are possible
        if (samples[t].size() < 256) {
          samples[t].push_back({r.value().resolved_refresh_ts,
                                r.value().digest, r.value().rows_scanned,
                                r.value().sum_i64});
          total_samples.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Writer: 60 insert+refresh commits while the readers run. The brief
  // sleep keeps commits interleaving with reads instead of finishing before
  // the reader threads are scheduled at all.
  for (int round = 1; round <= 60; ++round) {
    Exec(engine, "INSERT INTO src VALUES (" + std::to_string(round) + ", " +
                     std::to_string(round * 7) + ")");
    clock.Advance(kMicrosPerSecond);
    MustRefresh(engine, "dt", clock.Now());
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  // Let the readers record a healthy sample set before stopping (bounded
  // wait so a wedged reader fails the test instead of hanging it).
  for (int spin = 0; spin < 5000; ++spin) {
    if (total_samples.load(std::memory_order_relaxed) >= 32) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // Quiesced oracle: every sampled read must reproduce exactly at its
  // resolved refresh timestamp.
  serve::ReadQuery q;
  q.table = dt;
  q.kind = serve::ReadKind::kScan;
  q.sum_column = 1;
  size_t checked = 0;
  for (const auto& per_thread : samples) {
    for (const Sample& s : per_thread) {
      q.read_ts = s.resolved;
      auto r = service.Execute(q);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(r.value().resolved_refresh_ts, s.resolved);
      EXPECT_EQ(r.value().digest, s.digest);
      EXPECT_EQ(r.value().rows_scanned, s.rows);
      EXPECT_EQ(r.value().sum_i64, s.sum);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(ServeTest, AdmissionBoundsConcurrentReaders) {
  VirtualClock clock(0);
  DvsEngine engine(clock);
  Exec(engine, "CREATE TABLE t (k INT, v INT)");
  for (int i = 0; i < 20; ++i) {
    Exec(engine, "INSERT INTO t VALUES (" + std::to_string(i) + ", 1)");
  }
  clock.AdvanceTo(kMicrosPerSecond);

  serve::ServeOptions opts;
  opts.max_concurrent_readers = 2;
  serve::QueryService service(&engine, opts);
  const ObjectId t_id = engine.ObjectIdOf("t").value();
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      serve::ReadQuery q;
      q.table = t_id;
      q.read_ts = clock.Now();
      for (int i = 0; i < 50; ++i) {
        auto r = service.Execute(q);
        ASSERT_TRUE(r.ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  const serve::ServeStats stats = service.stats();
  EXPECT_EQ(stats.queries, 400u);
  EXPECT_GE(stats.admission_peak, 1);
  EXPECT_LE(stats.admission_peak, 2);
}

// A reader's pinned snapshot survives retention pruning the version out of
// the table; a *new* snapshot of the pruned version fails cleanly.
TEST(ServeTest, SnapshotSurvivesPrune) {
  VirtualClock clock(0);
  DvsEngine engine(clock);
  Exec(engine, "CREATE TABLE t (k INT, v INT)");
  Exec(engine, "INSERT INTO t VALUES (1, 1)");
  Exec(engine, "INSERT INTO t VALUES (2, 2)");
  Exec(engine, "INSERT INTO t VALUES (3, 3)");

  VersionedTable* storage =
      engine.catalog().Find("t").value()->storage.get();
  const VersionId old_version = storage->latest_version() - 1;  // 2 rows
  auto pinned = storage->SnapshotVersion(old_version);
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  EXPECT_EQ(pinned.value().row_count, 2u);

  storage->PruneVersionsBefore(storage->latest_version());
  EXPECT_GT(storage->first_version(), old_version);

  // The pruned version is gone for new snapshots...
  auto gone = storage->SnapshotVersion(old_version);
  EXPECT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kFailedPrecondition);

  // ...but the pinned partitions are still fully readable.
  size_t rows = 0;
  for (const auto& part : pinned.value().partitions) {
    for (const BatchPtr& batch : PartitionToBatches(*part)) {
      rows += batch->rows;
    }
  }
  EXPECT_EQ(rows, 2u);
  EXPECT_GE(storage->stats().snapshot_pins.load(), 1u);
}

TEST(ServeTest, BatchCacheServesIdenticalBytes) {
  VirtualClock clock(0);
  DvsEngine engine(clock);
  Exec(engine, "CREATE TABLE t (k INT, v INT)");
  Exec(engine, "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
  clock.AdvanceTo(kMicrosPerSecond);

  serve::QueryService service(&engine);
  serve::ReadQuery q;
  q.table = engine.ObjectIdOf("t").value();
  q.read_ts = clock.Now();
  q.sum_column = 1;
  auto first = service.Execute(q);
  auto second = service.Execute(q);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().digest, second.value().digest);
  EXPECT_EQ(first.value().sum_i64, 60);
  EXPECT_EQ(second.value().sum_i64, 60);
  const serve::ServeStats stats = service.stats();
  EXPECT_GE(stats.cache_hits, 1u);
  EXPECT_GE(stats.cache_misses, 1u);

  // Capacity 0 disables the cache but serves the same bytes.
  serve::ServeOptions no_cache;
  no_cache.batch_cache_capacity = 0;
  serve::QueryService uncached(&engine, no_cache);
  auto third = uncached.Execute(q);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.value().digest, first.value().digest);
  EXPECT_EQ(uncached.stats().cache_hits, 0u);
}

TEST(ServeTest, LatencyHistogramQuantiles) {
  serve::LatencyHistogram h;
  EXPECT_EQ(h.QuantileUs(0.5), 0.0);  // empty

  // Exact region: values < 8us land in unit buckets with zero error.
  for (int i = 0; i < 100; ++i) h.Record(3);
  EXPECT_EQ(h.P50Us(), 3.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.max_us(), 3);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);

  // Log region: 1000 values 0..999, quantiles within a sub-bucket (~6%).
  for (int i = 0; i < 1000; ++i) h.Record(i);
  EXPECT_NEAR(h.P50Us(), 500.0, 0.07 * 500);
  EXPECT_NEAR(h.P99Us(), 990.0, 0.07 * 990);
  EXPECT_EQ(h.max_us(), 999);

  // Bucket math round-trips: a value's bucket midpoint is within half a
  // sub-bucket of the value, at every magnitude.
  for (uint64_t v : {0ull, 7ull, 8ull, 1000ull, 123456ull, 99999999ull}) {
    const size_t idx = serve::LatencyHistogram::BucketIndex(v);
    const double mid = serve::LatencyHistogram::BucketMidpoint(idx);
    EXPECT_NEAR(mid, static_cast<double>(v),
                std::max(1.0, 0.07 * static_cast<double>(v)))
        << "v=" << v;
  }

  // Concurrent recording is clean (exercised under TSan).
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&h, t] {
      for (int i = 0; i < 1000; ++i) h.Record(t * 100 + i % 50);
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(h.count(), 5000u);
}

}  // namespace
}  // namespace dvs
