// Columnar batch engine tests: ColumnBatch invariants (null bitmap, lane
// demotion, string interning), vectorized-vs-scalar evaluation parity, key
// digest compatibility with HashRow, and randomized whole-plan equivalence
// against the row engine (force_row_path) as the oracle — results, row ids,
// emission order, and the rows_processed work metric must all match.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/batch_exec.h"
#include "exec/vector_eval.h"
#include "plan/logical_plan.h"

namespace dvs {
namespace {

std::vector<IdRow> MakeIdRows(std::vector<Row> rows) {
  std::vector<IdRow> out;
  RowId id = 1;
  for (Row& r : rows) out.push_back({id++, std::move(r)});
  return out;
}

// ---- Null bitmap ----

TEST(ColumnBatchTest, NullBitmapRoundTrip) {
  BatchColumn col;
  col.AppendValue(Value::Int(1));
  col.AppendValue(Value::Null());
  col.AppendValue(Value::Int(3));
  col.AppendValue(Value::Null());
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_FALSE(col.IsNull(2));
  EXPECT_TRUE(col.IsNull(3));
  EXPECT_EQ(col.null_count(), 2u);
  EXPECT_TRUE(col.GetValue(1).is_null());
  EXPECT_EQ(col.GetValue(2).int_value(), 3);
}

TEST(ColumnBatchTest, NullPropagatesThroughVectorEval) {
  // v + 1 over [10, NULL, 30]: the null row stays null, exactly like the
  // scalar engine's null propagation.
  std::vector<IdRow> rows =
      MakeIdRows({{Value::Int(10)}, {Value::Null()}, {Value::Int(30)}});
  BatchVector batches = RowsToBatches(rows);
  ASSERT_EQ(batches.size(), 1u);
  ExprPtr e = Binary(BinaryOp::kAdd, ColRef(0), LitInt(1));
  EvalContext ec;
  Result<ColumnPtr> out = EvalColumn(*e, *batches[0], nullptr, ec);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value()->GetValue(0).int_value(), 11);
  EXPECT_TRUE(out.value()->IsNull(1));
  EXPECT_EQ(out.value()->GetValue(2).int_value(), 31);
}

// ---- Lane discipline ----

TEST(ColumnBatchTest, MixedTagsDemoteWithoutPromotion) {
  // Int then double then string: the lane demotes to boxed values but every
  // element keeps its exact original tag (SUM's all-int accumulation and
  // Value::Hash are tag-sensitive).
  BatchColumn col;
  col.AppendValue(Value::Int(7));
  col.AppendValue(Value::Double(2.5));
  col.AppendValue(Value::String("x"));
  EXPECT_EQ(col.lane(), BatchColumn::Lane::kVal);
  EXPECT_EQ(col.GetValue(0).type(), DataType::kInt64);
  EXPECT_EQ(col.GetValue(1).type(), DataType::kDouble);
  EXPECT_EQ(col.GetValue(2).type(), DataType::kString);
  EXPECT_EQ(col.GetValue(0).int_value(), 7);
  EXPECT_EQ(col.GetValue(1).double_value(), 2.5);
  EXPECT_EQ(col.GetValue(2).string_value(), "x");
}

TEST(ColumnBatchTest, BoolAndTimestampShareLaneButKeepTags) {
  // BOOL / INT64 / TIMESTAMP all ride the i64 lane; mixing them within one
  // column must still round-trip exact tags (via demotion).
  BatchColumn col;
  col.AppendValue(Value::Bool(true));
  col.AppendValue(Value::Timestamp(12345));
  col.AppendValue(Value::Int(9));
  EXPECT_EQ(col.GetValue(0).type(), DataType::kBool);
  EXPECT_TRUE(col.GetValue(0).bool_value());
  EXPECT_EQ(col.GetValue(1).type(), DataType::kTimestamp);
  EXPECT_EQ(col.GetValue(2).type(), DataType::kInt64);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(col.HashAt(i), col.GetValue(i).Hash()) << i;
  }
}

// ---- String lifetime ----

TEST(ColumnBatchTest, GatherInternsStringsIntoDestinationArena) {
  // Strings gathered into a new batch must not reference the source arena:
  // the source batch (and its arena) is freed while the gathered batch is
  // still live — exactly what filter compaction and join gathers do across
  // batch boundaries.
  auto src = std::make_shared<ColumnBatch>();
  {
    auto col = std::make_shared<BatchColumn>();
    col->AppendValue(Value::String("alpha-0123456789"));
    col->AppendValue(Value::String("beta-0123456789"));
    col->AppendValue(Value::String("gamma-0123456789"));
    src->cols.push_back(std::move(col));
    src->ids = {1, 2, 3};
    src->rows = 3;
  }
  BatchPtr gathered = GatherBatch(src, Sel{0, 2});
  src.reset();  // free the source batch and its string arena
  ASSERT_EQ(gathered->rows, 2u);
  EXPECT_EQ(gathered->ids, (std::vector<RowId>{1, 3}));
  EXPECT_EQ(gathered->cols[0]->GetValue(0).string_value(), "alpha-0123456789");
  EXPECT_EQ(gathered->cols[0]->GetValue(1).string_value(), "gamma-0123456789");
}

// ---- Selection-vector compaction ----

TEST(BatchExecTest, FilterCompactsAcrossBatchBoundaries) {
  // 2.5 batches worth of rows; keep every third row via IN. Compaction must
  // keep ids aligned with values across batch boundaries, and the batch
  // engine's work accounting must equal the row engine's.
  const size_t n = 2 * kBatchSize + kBatchSize / 2;
  std::vector<Row> rows;
  for (size_t i = 0; i < n; ++i) {
    rows.push_back({Value::Int(static_cast<int64_t>(i)),
                    Value::String("r" + std::to_string(i % 7))});
  }
  std::vector<IdRow> input = MakeIdRows(std::move(rows));

  std::vector<ExprPtr> in_children;
  in_children.push_back(ColRef(0));
  for (size_t i = 0; i < n; i += 3) {
    in_children.push_back(LitInt(static_cast<int64_t>(i)));
  }
  PlanPtr plan = MakeFilter(
      MakeScan(1, "t",
               Schema({{"i", DataType::kInt64}, {"s", DataType::kString}})),
      InList(std::move(in_children)));

  ExecContext batch_ctx;
  batch_ctx.resolve_scan = [&](ObjectId) -> Result<std::vector<IdRow>> {
    return input;
  };
  ExecContext row_ctx = batch_ctx;
  row_ctx.force_row_path = true;

  auto b = ExecutePlan(*plan, batch_ctx);
  auto r = ExecutePlan(*plan, row_ctx);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(b.value().size(), (n + 2) / 3);
  ASSERT_EQ(b.value().size(), r.value().size());
  for (size_t i = 0; i < b.value().size(); ++i) {
    EXPECT_EQ(b.value()[i].id, r.value()[i].id);
    EXPECT_TRUE(RowsEqual(b.value()[i].values, r.value()[i].values));
  }
  EXPECT_EQ(batch_ctx.rows_processed, row_ctx.rows_processed);
}

// ---- Digest compatibility ----

TEST(BatchKeysTest, DigestsMatchHashRowExactly) {
  // ComputeBatchKeys digests feed the same KeyedIndex/KeyedSet tables as
  // KeyExtractor; they must equal HashRow of the materialized key bit for
  // bit, across every value tag (including the integral-double case, where
  // HashRow's numeric folding is tag-sensitive).
  std::vector<Row> rows = {
      {Value::Int(42), Value::String("a")},
      {Value::Null(), Value::String("b")},
      {Value::Bool(true), Value::Null()},
      {Value::Double(3.0), Value::String("c")},   // integral double
      {Value::Double(3.25), Value::String("d")},  // non-integral
      {Value::Timestamp(99), Value::String("e")},
  };
  BatchVector batches = RowsToBatches(MakeIdRows(std::move(rows)));
  ASSERT_EQ(batches.size(), 1u);
  std::vector<ExprPtr> keys;
  keys.push_back(ColRef(0));
  keys.push_back(ColRef(1));
  EvalContext ec;
  Result<BatchKeys> bk = ComputeBatchKeys(keys, *batches[0], ec);
  ASSERT_TRUE(bk.ok()) << bk.status().ToString();
  for (size_t r = 0; r < batches[0]->rows; ++r) {
    Row key = {batches[0]->cols[0]->GetValue(r),
               batches[0]->cols[1]->GetValue(r)};
    EXPECT_EQ(bk.value().digests[r], HashRow(key)) << "row " << r;
    bool has_null = key[0].is_null() || key[1].is_null();
    EXPECT_EQ(bk.value().has_null[r] != 0, has_null) << "row " << r;
  }
}

// ---- Randomized whole-plan equivalence (row engine as oracle) ----

Row RandomRow(Rng* rng) {
  // k: small-domain int (join/group key), occasionally null; v: mixed
  // int/double/null (SUM/AVG folds are tag-sensitive); s: small-domain
  // string, occasionally null.
  Value k = rng->Bernoulli(0.1) ? Value::Null()
                                : Value::Int(rng->Uniform(0, 6));
  Value v;
  switch (rng->Uniform(0, 2)) {
    case 0:
      v = Value::Null();
      break;
    case 1:
      v = Value::Int(rng->Uniform(-5, 5));
      break;
    default:
      v = Value::Double(static_cast<double>(rng->Uniform(-8, 8)) / 2.0);
      break;
  }
  Value s = rng->Bernoulli(0.1)
                ? Value::Null()
                : Value::String("s" + std::to_string(rng->Uniform(0, 3)));
  return {std::move(k), std::move(v), std::move(s)};
}

PlanPtr EquivalenceShape(int which, const Schema& schema) {
  PlanPtr sa = MakeScan(1, "a", schema);
  PlanPtr sb = MakeScan(2, "b", schema);
  switch (which) {
    case 0:  // filter + project with arithmetic
      return MakeProject(
          MakeFilter(sa, Binary(BinaryOp::kGt, ColRef(1), LitInt(0))),
          {ColRef(0), Binary(BinaryOp::kAdd, ColRef(1), ColRef(1)), ColRef(2)},
          {"k", "v2", "s"});
    case 1:  // inner equi-join
      return MakeJoin(JoinType::kInner, sa, sb, {ColRef(0)}, {ColRef(0)});
    case 2:  // left join with residual over the concatenated row
      return MakeJoin(JoinType::kLeft, sa, sb, {ColRef(0)}, {ColRef(0)},
                      Binary(BinaryOp::kNe, ColRef(2), ColRef(5)));
    case 3:  // full outer join
      return MakeJoin(JoinType::kFull, sa, sb, {ColRef(0)}, {ColRef(0)});
    case 4:  // grouped aggregation, all fold kinds
      return MakeAggregate(sa, {ColRef(0)},
                           {Agg(AggFunc::kCountStar, {}),
                            Agg(AggFunc::kSum, {ColRef(1)}),
                            Agg(AggFunc::kMin, {ColRef(2)}),
                            Agg(AggFunc::kAvg, {ColRef(1)})},
                           {"k", "n", "sv", "mn", "av"});
    case 5:  // aggregation over a join (the E15 hot-path shape)
      return MakeAggregate(
          MakeJoin(JoinType::kInner, sa, sb, {ColRef(0)}, {ColRef(0)}),
          {ColRef(2)},
          {Agg(AggFunc::kCountStar, {}), Agg(AggFunc::kSum, {ColRef(4)})},
          {"s", "n", "sv"});
    case 6:  // distinct over a projection
      return MakeDistinct(MakeProject(sa, {ColRef(0), ColRef(2)}, {"k", "s"}));
    case 7:  // union all
      return MakeUnionAll(MakeProject(sa, {ColRef(0), ColRef(1)}, {"k", "v"}),
                          MakeProject(sb, {ColRef(0), ColRef(1)}, {"k", "v"}));
    case 8:  // window over partitions (row-kernel shim under batching)
      return MakeWindow(sa, {ColRef(2)}, {{ColRef(1), true}},
                        {Win(WindowFunc::kRowNumber, {}),
                         Win(WindowFunc::kSum, {ColRef(1)})},
                        {"rn", "running"});
    default:  // scalar aggregation (forced global group)
      return MakeAggregate(sa, {},
                           {Agg(AggFunc::kCountStar, {}),
                            Agg(AggFunc::kSum, {ColRef(1)})},
                           {"n", "sv"});
  }
}

TEST(BatchExecTest, RandomPlansMatchRowEngineExactly) {
  const Schema schema({{"k", DataType::kInt64},
                       {"v", DataType::kInt64},
                       {"s", DataType::kString}});
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    for (int shape = 0; shape <= 9; ++shape) {
      Rng rng(seed * 104729 + static_cast<uint64_t>(shape));
      std::vector<Row> ra, rb;
      const int64_t na = rng.Uniform(0, 60);
      const int64_t nb = rng.Uniform(0, 60);
      for (int64_t i = 0; i < na; ++i) ra.push_back(RandomRow(&rng));
      for (int64_t i = 0; i < nb; ++i) rb.push_back(RandomRow(&rng));
      std::vector<IdRow> ia = MakeIdRows(std::move(ra));
      std::vector<IdRow> ib = MakeIdRows(std::move(rb));

      PlanPtr plan = CanonicalizePlanTags(EquivalenceShape(shape, schema));
      ASSERT_NE(plan, nullptr);
      ASSERT_TRUE(PlanBatchSafe(*plan)) << "shape " << shape;

      ExecContext batch_ctx;
      batch_ctx.resolve_scan = [&](ObjectId id) -> Result<std::vector<IdRow>> {
        return id == 1 ? ia : ib;
      };
      ExecContext row_ctx = batch_ctx;
      row_ctx.force_row_path = true;

      auto b = ExecutePlan(*plan, batch_ctx);
      auto r = ExecutePlan(*plan, row_ctx);
      ASSERT_EQ(b.ok(), r.ok()) << "seed " << seed << " shape " << shape;
      if (!b.ok()) {
        EXPECT_EQ(b.status().ToString(), r.status().ToString());
        continue;
      }
      ASSERT_EQ(b.value().size(), r.value().size())
          << "seed " << seed << " shape " << shape;
      for (size_t i = 0; i < b.value().size(); ++i) {
        EXPECT_EQ(b.value()[i].id, r.value()[i].id)
            << "seed " << seed << " shape " << shape << " row " << i;
        EXPECT_TRUE(RowsEqual(b.value()[i].values, r.value()[i].values))
            << "seed " << seed << " shape " << shape << " row " << i;
      }
      EXPECT_EQ(batch_ctx.rows_processed, row_ctx.rows_processed)
          << "seed " << seed << " shape " << shape;
    }
  }
}

TEST(BatchExecTest, VolatilePlansRouteToRowPath) {
  // RANDOM() draws from the eval context's rng in row-evaluation order;
  // vectorized evaluation would reorder the draws, so such plans must be
  // declared batch-unsafe.
  PlanPtr plan =
      MakeProject(MakeScan(1, "t", Schema({{"k", DataType::kInt64}})),
                  {ColRef(0), Func("random", {})}, {"k", "r"});
  EXPECT_FALSE(PlanBatchSafe(*plan));
}

}  // namespace
}  // namespace dvs
