// Tests for plan/: expression trees, analysis helpers, plan builders,
// schema computation, and printing (used by debugging tooling).

#include <gtest/gtest.h>

#include "plan/logical_plan.h"

namespace dvs {
namespace {

TEST(ExprTest, FactoryTypesInference) {
  EXPECT_EQ(LitInt(1)->type, DataType::kInt64);
  EXPECT_EQ(LitDouble(1.5)->type, DataType::kDouble);
  EXPECT_EQ(LitString("x")->type, DataType::kString);
  EXPECT_EQ(LitBool(true)->type, DataType::kBool);
  EXPECT_EQ(LitNull()->type, DataType::kNull);
  EXPECT_EQ(Binary(BinaryOp::kAdd, LitInt(1), LitInt(2))->type,
            DataType::kInt64);
  EXPECT_EQ(Binary(BinaryOp::kLt, LitInt(1), LitInt(2))->type,
            DataType::kBool);
  EXPECT_EQ(Binary(BinaryOp::kConcat, LitString("a"), LitString("b"))->type,
            DataType::kString);
  EXPECT_EQ(Agg(AggFunc::kCountStar, {})->type, DataType::kInt64);
  EXPECT_EQ(Agg(AggFunc::kAvg, {ColRef(0)})->type, DataType::kDouble);
  EXPECT_EQ(Agg(AggFunc::kSum, {ColRef(0, "v", DataType::kInt64)})->type,
            DataType::kInt64);
  EXPECT_EQ(Win(WindowFunc::kRowNumber, {})->type, DataType::kInt64);
  EXPECT_EQ(CastTo(DataType::kString, LitInt(1))->type, DataType::kString);
  EXPECT_EQ(InList({LitInt(1), LitInt(2)})->type, DataType::kBool);
}

TEST(ExprTest, ToStringForms) {
  EXPECT_EQ(ColRef(3)->ToString(), "$3");
  EXPECT_EQ(ColRef(3, "amount")->ToString(), "amount");
  EXPECT_EQ(Binary(BinaryOp::kGt, ColRef(0, "v"), LitInt(5))->ToString(),
            "(v > 5)");
  EXPECT_EQ(Unary(UnaryOp::kIsNull, ColRef(0, "v"))->ToString(), "v IS NULL");
  EXPECT_EQ(Func("abs", {LitInt(-1)})->ToString(), "abs(-1)");
  EXPECT_EQ(Agg(AggFunc::kCountStar, {})->ToString(), "COUNT(*)");
  EXPECT_EQ(Agg(AggFunc::kCount, {ColRef(0, "v")}, true)->ToString(),
            "COUNT(DISTINCT v)");
  EXPECT_NE(CaseWhen({LitBool(true), LitInt(1), LitInt(0)})->ToString()
                .find("CASE"),
            std::string::npos);
  EXPECT_EQ(InList({ColRef(0, "v"), LitInt(1), LitInt(2)})->ToString(),
            "v IN (1, 2)");
}

TEST(ExprTest, AnalysisHelpers) {
  ExprPtr agg_tree = Binary(BinaryOp::kAdd, Agg(AggFunc::kCountStar, {}),
                            LitInt(1));
  EXPECT_TRUE(ContainsAggregate(agg_tree));
  EXPECT_FALSE(ContainsWindow(agg_tree));
  ExprPtr win_tree = Win(WindowFunc::kSum, {ColRef(2)});
  EXPECT_TRUE(ContainsWindow(win_tree));
  EXPECT_FALSE(ContainsAggregate(win_tree));

  std::vector<size_t> refs;
  CollectColumnRefs(
      Binary(BinaryOp::kAdd, ColRef(1), Func("abs", {ColRef(4)})), &refs);
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0], 1u);
  EXPECT_EQ(refs[1], 4u);
}

TEST(ExprTest, RemapColumnsRewritesDeepTrees) {
  ExprPtr e = Binary(BinaryOp::kAdd, ColRef(0),
                     Func("abs", {Binary(BinaryOp::kMul, ColRef(2), ColRef(1))}));
  std::vector<size_t> mapping = {10, 11, 12};
  ExprPtr remapped = RemapColumns(e, mapping);
  std::vector<size_t> refs;
  CollectColumnRefs(remapped, &refs);
  std::sort(refs.begin(), refs.end());
  EXPECT_EQ(refs, (std::vector<size_t>{10, 11, 12}));
  // Original untouched (immutability).
  refs.clear();
  CollectColumnRefs(e, &refs);
  std::sort(refs.begin(), refs.end());
  EXPECT_EQ(refs, (std::vector<size_t>{0, 1, 2}));
}

Schema KV() {
  return Schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}});
}

TEST(PlanTest, BuildersComputeSchemas) {
  PlanPtr scan = MakeScan(1, "t", KV());
  EXPECT_EQ(scan->output_schema.size(), 2u);

  PlanPtr filter = MakeFilter(scan, Binary(BinaryOp::kGt, ColRef(1), LitInt(0)));
  EXPECT_EQ(filter->output_schema, scan->output_schema);

  PlanPtr project = MakeProject(scan, {ColRef(0)}, {"k"});
  EXPECT_EQ(project->output_schema.size(), 1u);

  PlanPtr join = MakeJoin(JoinType::kInner, scan, MakeScan(2, "u", KV()),
                          {ColRef(0)}, {ColRef(0)});
  EXPECT_EQ(join->output_schema.size(), 4u);

  PlanPtr agg = MakeAggregate(scan, {ColRef(0)},
                              {Agg(AggFunc::kCountStar, {})}, {"k", "n"});
  EXPECT_EQ(agg->output_schema.size(), 2u);
  EXPECT_EQ(agg->output_schema.column(1).type, DataType::kInt64);

  PlanPtr window = MakeWindow(scan, {ColRef(0)}, {},
                              {Win(WindowFunc::kRowNumber, {})}, {"rn"});
  EXPECT_EQ(window->output_schema.size(), 3u);  // input + call

  PlanPtr flatten = MakeFlatten(scan, ColRef(1), "tag");
  EXPECT_EQ(flatten->output_schema.size(), 4u);  // input + index + value
  EXPECT_EQ(flatten->output_schema.column(2).name, "index");
}

TEST(PlanTest, NodeTagsAreUnique) {
  PlanPtr a = MakeScan(1, "t", KV());
  PlanPtr b = MakeScan(1, "t", KV());
  EXPECT_NE(a->node_tag, b->node_tag);
}

TEST(PlanTest, CollectScanIdsDeduplicates) {
  PlanPtr scan1 = MakeScan(7, "t", KV());
  PlanPtr scan2 = MakeScan(7, "t", KV());
  PlanPtr scan3 = MakeScan(9, "u", KV());
  PlanPtr join = MakeJoin(JoinType::kInner,
                          MakeUnionAll(scan1, scan2), scan3,
                          {ColRef(0)}, {ColRef(0)});
  std::vector<ObjectId> ids = CollectScanIds(join);
  EXPECT_EQ(ids, (std::vector<ObjectId>{7, 9}));
}

TEST(PlanTest, CountOperatorsSplitsJoinKinds) {
  PlanPtr scan = MakeScan(1, "t", KV());
  PlanPtr plan = MakeJoin(
      JoinType::kLeft,
      MakeJoin(JoinType::kInner, scan, scan, {ColRef(0)}, {ColRef(0)}),
      scan, {ColRef(0)}, {ColRef(0)});
  OperatorCounts c = CountOperators(plan);
  EXPECT_EQ(c.inner_join, 1);
  EXPECT_EQ(c.outer_join, 1);
  EXPECT_EQ(c.scan, 3);
}

TEST(PlanTest, ToStringRendersTree) {
  PlanPtr plan = MakeFilter(MakeScan(1, "orders", KV()),
                            Binary(BinaryOp::kGt, ColRef(1, "v"), LitInt(5)));
  std::string s = plan->ToString();
  EXPECT_NE(s.find("Filter"), std::string::npos);
  EXPECT_NE(s.find("Scan(orders)"), std::string::npos);
  EXPECT_NE(s.find("(v > 5)"), std::string::npos);
}

TEST(PlanTest, VisitPlanIsPreOrder) {
  PlanPtr scan = MakeScan(1, "t", KV());
  PlanPtr plan = MakeFilter(MakeProject(scan, {ColRef(0)}, {"k"}),
                            Binary(BinaryOp::kGt, ColRef(0), LitInt(0)));
  std::vector<PlanKind> order;
  VisitPlan(plan, [&](const PlanNode& n) { order.push_back(n.kind); });
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], PlanKind::kFilter);
  EXPECT_EQ(order[1], PlanKind::kProject);
  EXPECT_EQ(order[2], PlanKind::kScan);
}

}  // namespace
}  // namespace dvs
