// Tests for storage/: versioning, time travel, change scans, validations.

#include <gtest/gtest.h>

#include <algorithm>

#include "storage/versioned_table.h"

namespace dvs {
namespace {

Schema TwoCol() {
  return Schema({{"id", DataType::kInt64}, {"name", DataType::kString}});
}

Row R(int64_t id, const char* name) {
  return {Value::Int(id), Value::String(name)};
}

std::vector<IdRow> Sorted(std::vector<IdRow> rows) {
  std::sort(rows.begin(), rows.end(),
            [](const IdRow& a, const IdRow& b) { return a.id < b.id; });
  return rows;
}

TEST(VersionedTableTest, StartsEmptyAtVersionOne) {
  VersionedTable t(TwoCol());
  EXPECT_EQ(t.latest_version(), 1u);
  EXPECT_TRUE(t.ScanLatest().empty());
  EXPECT_EQ(t.RowCountAt(1), 0u);
}

TEST(VersionedTableTest, InsertCreatesNewVersion) {
  VersionedTable t(TwoCol());
  ChangeSet cs = t.MakeInsertChanges({R(1, "a"), R(2, "b")});
  auto v = t.ApplyChanges(cs, {10, 0});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 2u);
  EXPECT_EQ(t.RowCountAt(2), 2u);
  EXPECT_EQ(t.ScanAt(1).size(), 0u);  // time travel: old version unchanged
  EXPECT_EQ(t.ScanAt(2).size(), 2u);
}

TEST(VersionedTableTest, MakeInsertChangesAssignsDistinctIds) {
  VersionedTable t(TwoCol());
  ChangeSet a = t.MakeInsertChanges({R(1, "a")});
  ChangeSet b = t.MakeInsertChanges({R(2, "b")});
  EXPECT_NE(a[0].row_id, b[0].row_id);
}

TEST(VersionedTableTest, ResolveVersionAtCommitBoundaries) {
  VersionedTable t(TwoCol());
  ASSERT_TRUE(t.ApplyChanges(t.MakeInsertChanges({R(1, "a")}), {10, 0}).ok());
  ASSERT_TRUE(t.ApplyChanges(t.MakeInsertChanges({R(2, "b")}), {20, 0}).ok());
  EXPECT_EQ(t.ResolveVersionAt(HlcTimestamp{5, 0}), 1u);
  EXPECT_EQ(t.ResolveVersionAt(HlcTimestamp{10, 0}), 2u);
  EXPECT_EQ(t.ResolveVersionAt(HlcTimestamp{15, 0}), 2u);
  EXPECT_EQ(t.ResolveVersionAt(HlcTimestamp{20, 0}), 3u);
  EXPECT_EQ(t.ResolveVersionAt(HlcTimestamp::AtWallTime(1000)), 3u);
}

TEST(VersionedTableTest, DeleteRewritesPartitionCopyOnWrite) {
  VersionedTable t(TwoCol(), /*max_partition_rows=*/10);
  ChangeSet ins = t.MakeInsertChanges({R(1, "a"), R(2, "b"), R(3, "c")});
  ASSERT_TRUE(t.ApplyChanges(ins, {10, 0}).ok());
  ChangeSet del = {{ChangeAction::kDelete, ins[1].row_id, ins[1].values}};
  ASSERT_TRUE(t.ApplyChanges(del, {20, 0}).ok());
  auto rows = t.ScanLatest();
  ASSERT_EQ(rows.size(), 2u);
  // Copy-on-write kept survivors with identical row ids.
  auto sorted = Sorted(rows);
  EXPECT_EQ(sorted[0].id, ins[0].row_id);
  EXPECT_EQ(sorted[1].id, ins[2].row_id);
  EXPECT_EQ(t.stats().rows_rewritten_copy, 2u);
}

TEST(VersionedTableTest, UpdateIsDeletePlusInsertWithSameId) {
  VersionedTable t(TwoCol());
  ChangeSet ins = t.MakeInsertChanges({R(1, "old")});
  ASSERT_TRUE(t.ApplyChanges(ins, {10, 0}).ok());
  ChangeSet upd = {
      {ChangeAction::kDelete, ins[0].row_id, ins[0].values},
      {ChangeAction::kInsert, ins[0].row_id, R(1, "new")},
  };
  ASSERT_TRUE(t.ApplyChanges(upd, {20, 0}).ok());
  auto rows = t.ScanLatest();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].id, ins[0].row_id);
  EXPECT_EQ(rows[0].values[1].string_value(), "new");
}

TEST(VersionedTableTest, RejectsDuplicateRowIdActionPair) {
  VersionedTable t(TwoCol());
  ChangeSet cs = {
      {ChangeAction::kInsert, 42, R(1, "a")},
      {ChangeAction::kInsert, 42, R(2, "b")},
  };
  auto v = t.ApplyChanges(cs, {10, 0});
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kCorruption);
}

TEST(VersionedTableTest, RejectsDeleteOfMissingRow) {
  VersionedTable t(TwoCol());
  ChangeSet cs = {{ChangeAction::kDelete, 999, R(9, "x")}};
  auto v = t.ApplyChanges(cs, {10, 0});
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kCorruption);
}

TEST(VersionedTableTest, RejectsInsertOfDuplicateRowId) {
  VersionedTable t(TwoCol());
  ChangeSet ins = t.MakeInsertChanges({R(1, "a")});
  ASSERT_TRUE(t.ApplyChanges(ins, {10, 0}).ok());
  ChangeSet dup = {{ChangeAction::kInsert, ins[0].row_id, R(5, "z")}};
  auto v = t.ApplyChanges(dup, {20, 0});
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kCorruption);
}

TEST(VersionedTableTest, RejectsNonMonotonicCommitTimestamp) {
  VersionedTable t(TwoCol());
  ASSERT_TRUE(t.ApplyChanges(t.MakeInsertChanges({R(1, "a")}), {10, 0}).ok());
  auto v = t.ApplyChanges(t.MakeInsertChanges({R(2, "b")}), {10, 0});
  EXPECT_FALSE(v.ok());
}

TEST(VersionedTableTest, ChangeScanReportsNetChanges) {
  VersionedTable t(TwoCol(), /*max_partition_rows=*/2);
  ChangeSet ins = t.MakeInsertChanges({R(1, "a"), R(2, "b"), R(3, "c")});
  ASSERT_TRUE(t.ApplyChanges(ins, {10, 0}).ok());
  VersionId v_before = t.latest_version();
  ChangeSet del = {{ChangeAction::kDelete, ins[0].row_id, ins[0].values}};
  ASSERT_TRUE(t.ApplyChanges(del, {20, 0}).ok());
  ASSERT_TRUE(t.ApplyChanges(t.MakeInsertChanges({R(4, "d")}), {30, 0}).ok());

  auto changes = t.ScanChanges(v_before, t.latest_version());
  ASSERT_TRUE(changes.ok());
  ChangeStats stats = CountChanges(changes.value());
  // Net effect: -row1, +row4; the copy-on-write survivor (row2) cancels.
  EXPECT_EQ(stats.deletes, 1u);
  EXPECT_EQ(stats.inserts, 1u);
}

TEST(VersionedTableTest, ChangeScanWithoutCancellationShowsAmplification) {
  VersionedTable t(TwoCol(), /*max_partition_rows=*/10);
  ChangeSet ins = t.MakeInsertChanges({R(1, "a"), R(2, "b"), R(3, "c")});
  ASSERT_TRUE(t.ApplyChanges(ins, {10, 0}).ok());
  VersionId v_before = t.latest_version();
  ChangeSet del = {{ChangeAction::kDelete, ins[0].row_id, ins[0].values}};
  ASSERT_TRUE(t.ApplyChanges(del, {20, 0}).ok());

  auto raw = t.ScanChanges(v_before, t.latest_version(), false);
  ASSERT_TRUE(raw.ok());
  // Raw diff: 3 deletes (whole partition removed) + 2 inserts (survivors).
  EXPECT_EQ(raw.value().size(), 5u);
  auto net = t.ScanChanges(v_before, t.latest_version());
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net.value().size(), 1u);
}

TEST(VersionedTableTest, ChangeScanOfUpdateKeepsBothActions) {
  VersionedTable t(TwoCol());
  ChangeSet ins = t.MakeInsertChanges({R(1, "old")});
  ASSERT_TRUE(t.ApplyChanges(ins, {10, 0}).ok());
  VersionId v1 = t.latest_version();
  ChangeSet upd = {
      {ChangeAction::kDelete, ins[0].row_id, ins[0].values},
      {ChangeAction::kInsert, ins[0].row_id, R(1, "new")},
  };
  ASSERT_TRUE(t.ApplyChanges(upd, {20, 0}).ok());
  auto changes = t.ScanChanges(v1, t.latest_version());
  ASSERT_TRUE(changes.ok());
  EXPECT_EQ(changes.value().size(), 2u);  // content differs: no cancellation
}

TEST(VersionedTableTest, OverwriteReplacesContents) {
  VersionedTable t(TwoCol());
  ASSERT_TRUE(t.ApplyChanges(t.MakeInsertChanges({R(1, "a"), R(2, "b")}),
                             {10, 0}).ok());
  std::vector<IdRow> next = {{100, R(7, "x")}, {101, R(8, "y")}, {102, R(9, "z")}};
  ASSERT_TRUE(t.Overwrite(next, {20, 0}).ok());
  EXPECT_EQ(t.ScanLatest().size(), 3u);
  EXPECT_EQ(t.RowCountAt(t.latest_version()), 3u);
}

TEST(VersionedTableTest, OverwriteRejectsDuplicateIds) {
  VersionedTable t(TwoCol());
  std::vector<IdRow> rows = {{100, R(7, "x")}, {100, R(8, "y")}};
  auto v = t.Overwrite(rows, {20, 0});
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kCorruption);
}

TEST(VersionedTableTest, NoOpVersionHasNoDataChanges) {
  VersionedTable t(TwoCol());
  ASSERT_TRUE(t.ApplyChanges(t.MakeInsertChanges({R(1, "a")}), {10, 0}).ok());
  VersionId v2 = t.latest_version();
  VersionId v3 = t.CommitNoOp({20, 0});
  EXPECT_FALSE(t.HasDataChanges(v2, v3));
  ASSERT_TRUE(t.ApplyChanges(t.MakeInsertChanges({R(2, "b")}), {30, 0}).ok());
  EXPECT_TRUE(t.HasDataChanges(v2, t.latest_version()));
}

TEST(VersionedTableTest, ReclusterIsDataEquivalent) {
  VersionedTable t(TwoCol(), /*max_partition_rows=*/1);
  ASSERT_TRUE(t.ApplyChanges(
      t.MakeInsertChanges({R(1, "a"), R(2, "b"), R(3, "c")}), {10, 0}).ok());
  VersionId before = t.latest_version();
  t.Recluster({20, 0});
  VersionId after = t.latest_version();
  // NO_DATA detection skips the data-equivalent version...
  EXPECT_FALSE(t.HasDataChanges(before, after));
  // ...and a change scan across it cancels to empty.
  auto changes = t.ScanChanges(before, after);
  ASSERT_TRUE(changes.ok());
  EXPECT_TRUE(changes.value().empty());
  // But the raw scan shows the read amplification the paper warns about.
  auto raw = t.ScanChanges(before, after, false);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw.value().size(), 6u);
  // Contents identical.
  EXPECT_EQ(Sorted(t.ScanAt(before)).size(), Sorted(t.ScanAt(after)).size());
}

TEST(VersionedTableTest, PartitionChunking) {
  VersionedTable t(TwoCol(), /*max_partition_rows=*/2);
  ASSERT_TRUE(t.ApplyChanges(
      t.MakeInsertChanges({R(1, "a"), R(2, "b"), R(3, "c"), R(4, "d"), R(5, "e")}),
      {10, 0}).ok());
  // 5 rows at <=2 rows per partition -> 3 partitions.
  EXPECT_EQ(t.stats().partitions_created, 3u);
  EXPECT_EQ(t.ScanLatest().size(), 5u);
}

TEST(VersionedTableTest, PruneVersionsBeforeDropsHistoryAndFreesPartitions) {
  VersionedTable t(TwoCol(), /*max_partition_rows=*/1);
  ASSERT_TRUE(
      t.ApplyChanges(t.MakeInsertChanges({R(1, "a"), R(2, "b")}), {10, 0})
          .ok());
  // Delete row 1: its partition is rewritten, so the old one becomes
  // unreachable once versions referencing it are pruned.
  ASSERT_TRUE(t.ApplyChanges({{ChangeAction::kDelete, 1, R(1, "a")}}, {20, 0})
                  .ok());
  ASSERT_TRUE(
      t.ApplyChanges(t.MakeInsertChanges({R(3, "c")}), {30, 0}).ok());
  ASSERT_EQ(t.version_count(), 4u);
  const size_t partitions_before = t.all_partitions().size();

  PruneOutcome out = t.PruneVersionsBefore(3);
  EXPECT_EQ(out.versions_pruned, 2u);
  EXPECT_GT(out.partitions_freed, 0u);
  EXPECT_EQ(t.first_version(), 3u);
  EXPECT_EQ(t.version_count(), 2u);
  EXPECT_LT(t.all_partitions().size(), partitions_before);
  EXPECT_EQ(t.stats().versions_pruned, 2u);

  // Pruned history is gone; retained history still scans and change-scans.
  EXPECT_FALSE(t.has_version(2));
  EXPECT_EQ(t.ResolveVersionAt({15, 0}), kInvalidVersionId);
  EXPECT_EQ(t.ScanAt(3).size(), 1u);
  EXPECT_EQ(t.ScanAt(4).size(), 2u);
  auto changes = t.ScanChanges(3, 4);
  ASSERT_TRUE(changes.ok());
  EXPECT_EQ(changes.value().size(), 1u);
  EXPECT_FALSE(t.ScanChanges(2, 4).ok());

  // The latest version is always kept, and re-pruning is a no-op.
  PruneOutcome again = t.PruneVersionsBefore(99);
  EXPECT_EQ(again.versions_pruned, 1u);  // clamped to latest (version 4)
  EXPECT_EQ(t.latest_version(), 4u);
  EXPECT_EQ(t.PruneVersionsBefore(4).versions_pruned, 0u);

  // Writes continue normally after pruning.
  ASSERT_TRUE(
      t.ApplyChanges(t.MakeInsertChanges({R(4, "d")}), {40, 0}).ok());
  EXPECT_EQ(t.ScanLatest().size(), 3u);
}

TEST(VersionedTableTest, PruneKeepsRowIdIndexIntact) {
  VersionedTable t(TwoCol(), /*max_partition_rows=*/2);
  ASSERT_TRUE(
      t.ApplyChanges(t.MakeInsertChanges({R(1, "a"), R(2, "b"), R(3, "c")}),
                     {10, 0})
          .ok());
  ASSERT_TRUE(t.ApplyChanges({{ChangeAction::kDelete, 2, R(2, "b")}}, {20, 0})
                  .ok());
  t.PruneVersionsBefore(t.latest_version());
  for (const IdRow& row : t.ScanLatest()) {
    const RowLocation* loc = t.FindRow(row.id);
    ASSERT_NE(loc, nullptr);
    EXPECT_TRUE(t.has_version(t.latest_version()));
  }
  EXPECT_EQ(t.FindRow(2), nullptr);
}

TEST(VersionedTableTest, TrimVersionsKeepsWindowEdgeExact) {
  // The timestamp form of the trim: reads at any t >= min_ts stay exact,
  // reads below the floor stop resolving.
  VersionedTable t(TwoCol(), /*max_partition_rows=*/1);
  ASSERT_TRUE(t.ApplyChanges(t.MakeInsertChanges({R(1, "a")}), {10, 0}).ok());
  ASSERT_TRUE(t.ApplyChanges(t.MakeInsertChanges({R(2, "b")}), {20, 0}).ok());
  ASSERT_TRUE(t.ApplyChanges(t.MakeInsertChanges({R(3, "c")}), {30, 0}).ok());

  // min_ts between commits: the newest version at or below it is retained,
  // so "as of 25" still resolves exactly (to the {20,0} version).
  PruneOutcome out = t.TrimVersions(HlcTimestamp::AtWallTime(25));
  EXPECT_EQ(out.versions_pruned, 2u);  // empty v1 and the {10,0} version
  EXPECT_EQ(t.ResolveVersionAt(HlcTimestamp::AtWallTime(25)),
            t.first_version());
  EXPECT_EQ(t.ScanAt(t.first_version()).size(), 2u);
  EXPECT_EQ(t.ResolveVersionAt(HlcTimestamp::AtWallTime(15)),
            kInvalidVersionId);

  // A min_ts before every retained commit trims nothing.
  EXPECT_EQ(t.TrimVersions(HlcTimestamp::AtWallTime(5)).versions_pruned, 0u);
}

TEST(VersionedTableTest, HistoryIsFullyTimeTravelable) {
  VersionedTable t(TwoCol());
  std::vector<size_t> expected_counts = {0};
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(
        t.ApplyChanges(t.MakeInsertChanges({R(i, "r")}), {i * 10, 0}).ok());
    expected_counts.push_back(static_cast<size_t>(i));
  }
  for (VersionId v = 1; v <= t.latest_version(); ++v) {
    EXPECT_EQ(t.ScanAt(v).size(), expected_counts[v - 1]);
  }
}

}  // namespace
}  // namespace dvs
