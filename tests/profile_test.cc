// Tests for src/obs/profile.h: ProfileSink mechanics (plan declaration,
// derived rows_in, scratch-sink merge), per-refresh profile retention (ring
// bound, success and failure outcomes, disarmed = no allocation), EXPLAIN /
// EXPLAIN ANALYZE through the SQL surface on both engines (force_row_path),
// the REFRESH_PROFILE table function (args, limits, definition rejection),
// worker-count invariance of every deterministic profile counter, and
// concurrent scrapes against a running multi-worker scheduler (TSan target).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "dt/engine.h"
#include "obs/introspect.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "plan/logical_plan.h"
#include "sched/scheduler.h"

namespace dvs {
namespace {

std::string RenderResult(const QueryResult& qr) {
  std::string out = qr.schema.ToString() + "\n";
  for (const Row& row : qr.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out += "|";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

// ---- ProfileSink mechanics ----

PlanPtr SmallPlan() {
  Schema s;
  s.AddColumn("k", DataType::kInt64);
  s.AddColumn("v", DataType::kInt64);
  PlanPtr scan = MakeScan(7, "t", s);
  PlanPtr filter =
      MakeFilter(scan, Binary(BinaryOp::kGt, ColRef(1), LitInt(0)));
  PlanPtr project = MakeProject(filter, {ColRef(0)}, {"k"});
  return CanonicalizePlanTags(project);
}

TEST(ProfileSinkTest, DeclarePlanRecordsPreOrder) {
  PlanPtr plan = SmallPlan();
  obs::ProfileSink sink;
  sink.DeclarePlan(*plan);
  const auto& ops = sink.operators();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].label, "Project");
  EXPECT_EQ(ops[1].label, "Filter");
  EXPECT_EQ(ops[2].label, "Scan t");
  EXPECT_EQ(ops[0].depth, 0);
  EXPECT_EQ(ops[1].depth, 1);
  EXPECT_EQ(ops[2].depth, 2);
  EXPECT_EQ(ops[1].parent, 0);
  EXPECT_EQ(ops[2].parent, 1);
  // Declaring again is idempotent.
  sink.DeclarePlan(*plan);
  EXPECT_EQ(sink.operators().size(), 3u);
}

TEST(ProfileSinkTest, RowsInDerivesFromChildren) {
  PlanPtr plan = SmallPlan();
  obs::ProfileSink sink;
  sink.DeclarePlan(*plan);
  const auto& ops = sink.operators();
  sink.Node(ops[2].tag)->rows_out = 10;  // scan emits 10
  sink.Node(ops[1].tag)->rows_out = 4;   // filter keeps 4
  sink.Node(ops[0].tag)->rows_out = 4;
  EXPECT_EQ(sink.RowsInOf(0), 4u);  // project reads filter's output
  EXPECT_EQ(sink.RowsInOf(1), 10u);
  EXPECT_EQ(sink.RowsInOf(2), 0u);  // leaves have no children
}

TEST(ProfileSinkTest, MergeFromFoldsCounters) {
  PlanPtr plan = SmallPlan();
  obs::ProfileSink sink;
  sink.DeclarePlan(*plan);
  const uint64_t tag = sink.operators()[1].tag;
  sink.Node(tag)->rows_out = 3;

  obs::ProfileSink scratch;
  scratch.Node(tag)->rows_out = 5;
  scratch.Node(tag)->batches = 2;
  sink.MergeFrom(scratch);
  EXPECT_EQ(sink.Find(tag)->rows_out, 8u);
  EXPECT_EQ(sink.Find(tag)->batches, 2u);

  std::string text = sink.RenderDeterministic();
  EXPECT_NE(text.find("Filter"), std::string::npos) << text;
  EXPECT_NE(text.find("rows_out=8"), std::string::npos) << text;
  // Deterministic render never contains wall time.
  EXPECT_EQ(text.find("wall_ms"), std::string::npos) << text;
}

TEST(ProfileArmingTest, ScopedInstallAndRestore) {
  EXPECT_FALSE(obs::ProfilingArmed());
  {
    obs::ScopedProfiling armed;
    EXPECT_TRUE(obs::ProfilingArmed());
    {
      obs::ScopedProfiling disarmed(false);
      EXPECT_FALSE(obs::ProfilingArmed());
    }
    EXPECT_TRUE(obs::ProfilingArmed());
  }
  EXPECT_FALSE(obs::ProfilingArmed());
}

// ---- Refresh profile retention ----

class ProfileEngineTest : public ::testing::Test {
 protected:
  ProfileEngineTest()
      : clock_(0), engine_(clock_), sched_(&engine_, &clock_) {}

  void Exec(const std::string& sql) {
    auto r = engine_.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }

  const DynamicTableMeta& Meta(const std::string& name) {
    auto obj = engine_.catalog().Find(name);
    EXPECT_TRUE(obj.ok());
    return *obj.value()->dt;
  }

  VirtualClock clock_;
  DvsEngine engine_;
  Scheduler sched_;
};

TEST_F(ProfileEngineTest, ArmedRefreshRetainsProfiles) {
  obs::ScopedProfiling armed;
  Exec("CREATE TABLE t (k INT, v INT)");
  Exec("CREATE DYNAMIC TABLE dt1 TARGET_LAG = '48 seconds' "
       "WAREHOUSE = wh AS SELECT k, v FROM t WHERE v > 0");
  Exec("INSERT INTO t VALUES (1, 10), (2, -5), (3, 30)");
  sched_.RunUntil(2 * kCanonicalBasePeriod);

  auto profiles = Meta("dt1").ProfileSnapshot();
  // INITIALIZE at create time plus at least one scheduled refresh.
  ASSERT_GE(profiles.size(), 2u);
  const obs::RefreshProfile& p = *profiles.front();
  EXPECT_EQ(p.dt_name, "dt1");
  EXPECT_EQ(p.outcome, "SUCCESS");
  EXPECT_FALSE(p.sink.operators().empty());
  // The INITIALIZE ran before the INSERT, but the later incremental refresh
  // saw real rows: across the ring, some operator emitted something.
  uint64_t total_rows = 0;
  for (const auto& prof : profiles) {
    for (const auto& op : prof->sink.operators()) {
      if (const obs::OpStats* s = prof->sink.Find(op.tag)) {
        total_rows += s->rows_out;
      }
    }
  }
  EXPECT_GT(total_rows, 0u);
}

TEST_F(ProfileEngineTest, DisarmedRefreshRetainsNothing) {
  ASSERT_FALSE(obs::ProfilingArmed());
  Exec("CREATE TABLE t (k INT, v INT)");
  Exec("CREATE DYNAMIC TABLE dt1 TARGET_LAG = '48 seconds' "
       "WAREHOUSE = wh AS SELECT k, v FROM t");
  Exec("INSERT INTO t VALUES (1, 10)");
  sched_.RunUntil(2 * kCanonicalBasePeriod);
  EXPECT_TRUE(Meta("dt1").ProfileSnapshot().empty());
}

TEST_F(ProfileEngineTest, RingIsBounded) {
  obs::ScopedProfiling armed;
  Exec("CREATE TABLE t (k INT, v INT)");
  Exec("CREATE DYNAMIC TABLE dt1 TARGET_LAG = '48 seconds' "
       "WAREHOUSE = wh AS SELECT k, v FROM t");
  for (int i = 0; i < 2 * static_cast<int>(obs::kProfileRingCapacity); ++i) {
    Exec("INSERT INTO t VALUES (" + std::to_string(i) + ", 1)");
    sched_.RunUntil(clock_.Now() + kCanonicalBasePeriod);
  }
  auto profiles = Meta("dt1").ProfileSnapshot();
  EXPECT_EQ(profiles.size(), obs::kProfileRingCapacity);
  // Newest retained: the last profile is an INCREMENTAL refresh, not the
  // long-evicted INITIALIZE.
  EXPECT_NE(profiles.back()->action, "INITIALIZE");
}

TEST_F(ProfileEngineTest, FailedRefreshRetainsFailureProfile) {
  obs::ScopedProfiling armed;
  Exec("CREATE TABLE t (k INT, v INT)");
  Exec("CREATE DYNAMIC TABLE dt1 TARGET_LAG = '48 seconds' "
       "WAREHOUSE = wh AS SELECT k, v FROM t");
  size_t before = Meta("dt1").ProfileSnapshot().size();
  Exec("DROP TABLE t");
  clock_.AdvanceTo(clock_.Now() + kCanonicalBasePeriod);
  auto id = engine_.ObjectIdOf("dt1");
  ASSERT_TRUE(id.ok());
  auto r = engine_.refresh_engine().Refresh(id.value(), clock_.Now());
  ASSERT_FALSE(r.ok());
  auto profiles = Meta("dt1").ProfileSnapshot();
  ASSERT_EQ(profiles.size(), before + 1);
  EXPECT_EQ(profiles.back()->outcome, "FAILURE");
}

// ---- EXPLAIN / EXPLAIN ANALYZE ----

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest() : clock_(0), engine_(clock_) {
    auto exec = [this](const std::string& sql) {
      auto r = engine_.Execute(sql);
      ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    };
    exec("CREATE TABLE t (k INT, v INT)");
    exec("INSERT INTO t VALUES (1, 10), (2, -5), (3, 30)");
  }

  /// Concatenates the single-column EXPLAIN output, with the trailing
  /// wall_ms token stripped from each line (report-only, nondeterministic).
  std::string ExplainLines(const std::string& sql) {
    auto r = engine_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    std::string out;
    if (!r.ok()) return out;
    EXPECT_EQ(r.value().schema.ToString(), "(plan STRING)");
    for (const Row& row : r.value().rows) {
      std::string line = row[0].ToString();
      size_t wall = line.find("  wall_ms=");
      if (wall != std::string::npos) line.resize(wall);
      out += line + "\n";
    }
    return out;
  }

  VirtualClock clock_;
  DvsEngine engine_;
};

TEST_F(ExplainTest, ExplainRendersBoundPlan) {
  std::string text = ExplainLines("EXPLAIN SELECT k FROM t WHERE v > 0");
  EXPECT_NE(text.find("Project"), std::string::npos) << text;
  EXPECT_NE(text.find("Filter"), std::string::npos) << text;
  EXPECT_NE(text.find("Scan t"), std::string::npos) << text;
  // Plain EXPLAIN never executes: no counters.
  EXPECT_EQ(text.find("rows_out"), std::string::npos) << text;
}

TEST_F(ExplainTest, ExplainAnalyzeAnnotatesCounters) {
  std::string text =
      ExplainLines("EXPLAIN ANALYZE SELECT k FROM t WHERE v > 0");
  // 3 rows scanned, 2 survive the filter.
  EXPECT_NE(text.find("rows_out=2"), std::string::npos) << text;
  EXPECT_NE(text.find("rows_out=3"), std::string::npos) << text;
  EXPECT_NE(text.find("rows_in=3"), std::string::npos) << text;
}

TEST_F(ExplainTest, RowAndBatchEnginesAgreeOnDeterministicCounters) {
  const std::string sql = "EXPLAIN ANALYZE SELECT k, v * 2 AS v2 FROM t "
                          "WHERE v > 0 ORDER BY k";
  std::string batch = ExplainLines(sql);
  engine_.set_force_row_path(true);
  std::string row = ExplainLines(sql);
  engine_.set_force_row_path(false);
  // The batch engine reports batches=...; strip that token too, then the
  // deterministic remainder (labels, rows_in/rows_out) must agree exactly.
  // Counter tokens are "  key=value" with a two-space separator; a batches
  // token ends at the next separator or end of line.
  auto strip_batches = [](std::string text) {
    size_t pos;
    while ((pos = text.find("  batches=")) != std::string::npos) {
      size_t end = text.find("  ", pos + 2);
      size_t nl = text.find('\n', pos);
      size_t stop = std::min(end == std::string::npos ? text.size() : end,
                             nl == std::string::npos ? text.size() : nl);
      text.erase(pos, stop - pos);
    }
    return text;
  };
  EXPECT_EQ(strip_batches(batch), strip_batches(row));
  EXPECT_NE(row.find("rows_out=2"), std::string::npos) << row;
}

TEST_F(ExplainTest, ExplainRejectsNonSelect) {
  auto r = engine_.Execute("EXPLAIN INSERT INTO t VALUES (4, 4)");
  EXPECT_FALSE(r.ok());
  auto r2 = engine_.Execute("EXPLAIN ANALYZE DROP TABLE t");
  EXPECT_FALSE(r2.ok());
}

// ---- REFRESH_PROFILE SQL surface ----

class RefreshProfileSqlTest : public ::testing::Test {
 protected:
  RefreshProfileSqlTest()
      : clock_(0), engine_(clock_), sched_(&engine_, &clock_) {
    obs::InstallProfiling(true);
    Exec("CREATE TABLE t (k INT, v INT)");
    Exec("CREATE DYNAMIC TABLE dt1 TARGET_LAG = '48 seconds' "
         "WAREHOUSE = wh AS SELECT k, v FROM t WHERE v > 0");
    Exec("INSERT INTO t VALUES (1, 10), (2, 20)");
    sched_.RunUntil(2 * kCanonicalBasePeriod);
    obs::InstallIntrospection(&engine_, &sched_);
  }
  ~RefreshProfileSqlTest() override { obs::InstallProfiling(false); }

  void Exec(const std::string& sql) {
    auto r = engine_.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }

  VirtualClock clock_;
  DvsEngine engine_;
  Scheduler sched_;
};

TEST_F(RefreshProfileSqlTest, ReturnsOperatorRows) {
  auto r = engine_.Query("SELECT * FROM refresh_profile('dt1')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r.value().rows.empty());
  // One row per (profile, operator); dt1's plan has 3 operators.
  EXPECT_EQ(r.value().rows.size() % 3, 0u);
  const Row& row = r.value().rows.front();
  EXPECT_EQ(row[0].ToString(), Value::String("dt1").ToString());
  EXPECT_EQ(row[3].ToString(), Value::String("SUCCESS").ToString());
  // wall_ns is the LAST column, so deterministic consumers can project the
  // prefix.
  EXPECT_EQ(r.value().schema.columns().back().name, "wall_ns");
}

TEST_F(RefreshProfileSqlTest, CountLimitsProfiles) {
  Exec("INSERT INTO t VALUES (3, 30)");
  sched_.RunUntil(clock_.Now() + kCanonicalBasePeriod);
  auto all = engine_.Query("SELECT * FROM refresh_profile('dt1')");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  auto one = engine_.Query("SELECT * FROM refresh_profile('dt1', 1)");
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  EXPECT_EQ(one.value().rows.size(), 3u);  // one profile x 3 operators
  EXPECT_GT(all.value().rows.size(), one.value().rows.size());
}

TEST_F(RefreshProfileSqlTest, BadArgumentsRejected) {
  EXPECT_FALSE(engine_.Query("SELECT * FROM refresh_profile()").ok());
  EXPECT_FALSE(engine_.Query("SELECT * FROM refresh_profile(42)").ok());
  EXPECT_FALSE(
      engine_.Query("SELECT * FROM refresh_profile('dt1', 0)").ok());
  EXPECT_FALSE(
      engine_.Query("SELECT * FROM refresh_profile('dt1', 1, 2)").ok());
  EXPECT_FALSE(engine_.Query("SELECT * FROM refresh_profile('no_such')").ok());
  EXPECT_FALSE(engine_.Query("SELECT * FROM refresh_profile('t')").ok());
}

TEST_F(RefreshProfileSqlTest, RejectedInsideDefinitions) {
  auto dt = engine_.Execute(
      "CREATE DYNAMIC TABLE dt_bad TARGET_LAG = '48 seconds' WAREHOUSE = wh "
      "AS SELECT * FROM refresh_profile('dt1')");
  EXPECT_FALSE(dt.ok());
  auto view = engine_.Execute(
      "CREATE VIEW v_bad AS SELECT * FROM refresh_profile('dt1')");
  EXPECT_FALSE(view.ok());
}

// ---- Worker-count invariance of deterministic profile counters ----

std::string ProfileFingerprint(int worker_threads) {
  obs::ScopedProfiling armed;
  VirtualClock clock(0);
  DvsEngine engine(clock);
  SchedulerOptions opts;
  opts.worker_threads = worker_threads;
  Scheduler sched(&engine, &clock, opts);
  auto exec = [&engine](const std::string& sql) {
    auto r = engine.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  };
  exec("CREATE TABLE src_a (k INT, v INT)");
  exec("CREATE TABLE src_b (k INT, v INT)");
  exec("CREATE DYNAMIC TABLE dt_j TARGET_LAG = '48 seconds' WAREHOUSE = wh "
       "AS SELECT a.k, a.v, b.v AS bv FROM src_a a JOIN src_b b ON a.k = b.k");
  exec("CREATE DYNAMIC TABLE dt_g TARGET_LAG = '96 seconds' WAREHOUSE = wh "
       "AS SELECT k, SUM(v) AS sv FROM src_a GROUP BY k");
  for (int round = 0; round < 5; ++round) {
    exec("INSERT INTO src_a VALUES (" + std::to_string(round % 3) + ", " +
         std::to_string(round + 1) + ")");
    exec("INSERT INTO src_b VALUES (" + std::to_string(round % 2) + ", 7)");
    sched.RunUntil(clock.Now() + kCanonicalBasePeriod);
  }
  obs::InstallIntrospection(&engine, &sched);
  // Project away the wall_ns column: everything left is deterministic.
  std::string out;
  for (const char* dt : {"dt_j", "dt_g"}) {
    auto r = engine.Query(
        std::string("SELECT name, refresh_ts, action, outcome, operator, "
                    "op_tag, rows_in, rows_out, batches, join_build_hits, "
                    "join_build_misses, join_probe_hits, join_probe_misses, "
                    "batch_cache_hits, batch_cache_misses, sel_memo_hits, "
                    "vector_bails, row_redos FROM refresh_profile('") +
        dt + "')");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (r.ok()) out += RenderResult(r.value());
  }
  return out;
}

TEST(ProfileDeterminismTest, WorkerCountInvariance) {
  std::string serial = ProfileFingerprint(0);
  std::string parallel_run = ProfileFingerprint(4);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel_run);
}

// ---- ExecCounters metrics (satellite: visible while disarmed) ----

TEST(ExecCountersTest, RegisteredDeterministicAndDeltaBased) {
  ASSERT_FALSE(obs::ProfilingArmed());
  VirtualClock clock(0);
  DvsEngine engine(clock);
  Scheduler sched(&engine, &clock);
  auto exec = [&engine](const std::string& sql) {
    auto r = engine.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  };
  exec("CREATE TABLE t (k INT, v INT)");
  exec("CREATE DYNAMIC TABLE dt1 TARGET_LAG = '48 seconds' "
       "WAREHOUSE = wh AS SELECT k, v FROM t WHERE v > 0");
  exec("INSERT INTO t VALUES (1, 10), (2, 20)");

  obs::Registry reg;
  obs::EngineMetrics metrics(&engine, &reg);  // baseline snapshotted here
  sched.RunUntil(2 * kCanonicalBasePeriod);
  std::string text = reg.Snapshot().DeterministicText();
  // All six exec-layer counters are registered as deterministic metrics even
  // though profiling is disarmed.
  for (const char* name :
       {"exec.join_cache.hits", "exec.join_cache.misses",
        "storage.batch_cache.hits", "storage.batch_cache.misses",
        "exec.vector_bails", "exec.row_redos"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name << "\n" << text;
  }
  // The refresh converted partitions to batches: the delta since
  // registration is visible.
  EXPECT_NE(text.find("storage.batch_cache.misses"), std::string::npos);
}

// ---- Concurrent scrape (TSan target) ----

TEST(ProfileConcurrencyTest, ScrapeWhileSchedulerRuns) {
  obs::ScopedProfiling armed;
  VirtualClock clock(0);
  DvsEngine engine(clock);
  SchedulerOptions opts;
  opts.worker_threads = 4;
  Scheduler sched(&engine, &clock, opts);
  auto exec = [&engine](const std::string& sql) {
    auto r = engine.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  };
  exec("CREATE TABLE t (k INT, v INT)");
  for (int i = 0; i < 4; ++i) {
    exec("CREATE DYNAMIC TABLE dt_" + std::to_string(i) +
         " TARGET_LAG = '48 seconds' WAREHOUSE = wh_" + std::to_string(i) +
         " AS SELECT k, v FROM t WHERE v > " + std::to_string(i));
  }
  exec("INSERT INTO t VALUES (1, 1), (2, 2), (3, 3), (4, 4), (5, 5)");
  sched.RunUntil(kCanonicalBasePeriod);
  obs::InstallIntrospection(&engine, &sched);

  // Scraper thread hammers the mutex-guarded profile rings while refresh
  // workers publish into them.
  std::atomic<bool> stop{false};
  std::atomic<int> scrapes{0};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 4; ++i) {
        auto r = engine.Query("SELECT * FROM refresh_profile('dt_" +
                              std::to_string(i) + "')");
        if (r.ok()) scrapes.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (int round = 0; round < 12; ++round) {
    exec("INSERT INTO t VALUES (" + std::to_string(round + 6) + ", " +
         std::to_string(round) + ")");
    sched.RunUntil(clock.Now() + kCanonicalBasePeriod);
  }
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  EXPECT_GT(scrapes.load(), 0);
  for (int i = 0; i < 4; ++i) {
    auto profiles = engine.catalog()
                        .Find("dt_" + std::to_string(i))
                        .value()
                        ->dt->ProfileSnapshot();
    EXPECT_FALSE(profiles.empty());
  }
}

}  // namespace
}  // namespace dvs
