// End-to-end dynamic table tests: DDL/DML through SQL, refresh actions,
// delayed view semantics invariants, query evolution, error handling.

#include <gtest/gtest.h>

#include <algorithm>

#include "dt/engine.h"

namespace dvs {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : clock_(kMicrosPerHour), engine_(clock_) {}

  void Exec(const std::string& sql) {
    auto r = engine_.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }

  QueryResult Q(const std::string& sql) {
    auto r = engine_.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? r.take() : QueryResult{};
  }

  /// Sorted row text, for order-insensitive comparison.
  static std::vector<std::string> Rendered(const std::vector<Row>& rows) {
    std::vector<std::string> out;
    for (const Row& r : rows) out.push_back(RowToString(r));
    std::sort(out.begin(), out.end());
    return out;
  }

  /// The paper's core testing invariant (§6.1): the DT's contents must equal
  /// its defining query evaluated as of the DT's data timestamp.
  void ExpectDvsInvariant(const std::string& dt_name) {
    auto obj = engine_.catalog().Find(dt_name);
    ASSERT_TRUE(obj.ok());
    ASSERT_TRUE(obj.value()->dt != nullptr);
    const DynamicTableMeta& meta = *obj.value()->dt;
    ASSERT_TRUE(meta.initialized);
    auto expected =
        engine_.QueryAsOf(meta.def.sql, meta.data_timestamp);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    auto actual = Q("SELECT * FROM " + dt_name);
    EXPECT_EQ(Rendered(actual.rows), Rendered(expected.value()))
        << dt_name << " violates delayed view semantics at ts "
        << meta.data_timestamp;
  }

  RefreshOutcome ManualRefresh(const std::string& dt_name) {
    clock_.Advance(kMicrosPerMinute);
    auto id = engine_.ObjectIdOf(dt_name);
    EXPECT_TRUE(id.ok());
    auto r = engine_.refresh_engine().RefreshWithUpstream(id.value(),
                                                          clock_.Now());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.take() : RefreshOutcome{};
  }

  const DynamicTableMeta& Meta(const std::string& name) {
    return *engine_.catalog().Find(name).value()->dt;
  }

  VirtualClock clock_;
  DvsEngine engine_;
};

TEST_F(EngineTest, CreateInsertSelectRoundTrip) {
  Exec("CREATE TABLE t (a INT, b STRING)");
  Exec("INSERT INTO t VALUES (1, 'x'), (2, 'y')");
  QueryResult r = Q("SELECT a, b FROM t ORDER BY a");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].int_value(), 1);
  EXPECT_EQ(r.rows[1][1].string_value(), "y");
}

TEST_F(EngineTest, DmlDeleteAndUpdate) {
  Exec("CREATE TABLE t (a INT, b STRING)");
  Exec("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')");
  auto del = engine_.Execute("DELETE FROM t WHERE a = 2");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del.value().affected_rows, 1);
  auto upd = engine_.Execute("UPDATE t SET b = 'w' WHERE a = 3");
  ASSERT_TRUE(upd.ok());
  EXPECT_EQ(upd.value().affected_rows, 1);
  QueryResult r = Q("SELECT b FROM t ORDER BY a");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[1][0].string_value(), "w");
}

TEST_F(EngineTest, DynamicTableInitializesOnCreate) {
  Exec("CREATE TABLE src (k INT, v INT)");
  Exec("INSERT INTO src VALUES (1, 10), (2, 20)");
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT k, v * 2 AS v2 FROM src");
  QueryResult r = Q("SELECT * FROM dt ORDER BY k");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].int_value(), 20);
  EXPECT_TRUE(Meta("dt").initialized);
  EXPECT_TRUE(Meta("dt").incremental);  // AUTO picks incremental
  ExpectDvsInvariant("dt");
}

TEST_F(EngineTest, UninitializedDtQueryFails) {
  Exec("CREATE TABLE src (k INT)");
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "INITIALIZE = ON_SCHEDULE AS SELECT k FROM src");
  auto r = engine_.Query("SELECT * FROM dt");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(EngineTest, IncrementalRefreshAfterInserts) {
  Exec("CREATE TABLE src (k INT, v INT)");
  Exec("INSERT INTO src VALUES (1, 10)");
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT k, v FROM src WHERE v > 5");
  clock_.Advance(kMicrosPerMinute);
  Exec("INSERT INTO src VALUES (2, 20), (3, 1)");  // 3 filtered out
  RefreshOutcome outcome = ManualRefresh("dt");
  EXPECT_EQ(outcome.action, RefreshAction::kIncremental);
  EXPECT_EQ(outcome.changes_applied, 1u);  // only (2,20) passes the filter
  EXPECT_EQ(Q("SELECT * FROM dt").rows.size(), 2u);
  ExpectDvsInvariant("dt");
}

TEST_F(EngineTest, IncrementalRefreshHandlesUpdatesAndDeletes) {
  Exec("CREATE TABLE src (k INT, v INT)");
  Exec("INSERT INTO src VALUES (1, 10), (2, 20), (3, 30)");
  Exec("CREATE DYNAMIC TABLE agg TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT k % 2 AS parity, sum(v) AS total, count(*) AS n "
       "FROM src GROUP BY ALL");
  clock_.Advance(kMicrosPerMinute);
  Exec("UPDATE src SET v = 100 WHERE k = 1");
  Exec("DELETE FROM src WHERE k = 2");
  RefreshOutcome outcome = ManualRefresh("agg");
  EXPECT_EQ(outcome.action, RefreshAction::kIncremental);
  ExpectDvsInvariant("agg");
  QueryResult r = Q("SELECT parity, total, n FROM agg ORDER BY parity");
  ASSERT_EQ(r.rows.size(), 1u);  // parity-0 group (k=2) disappeared
  EXPECT_EQ(r.rows[0][0].int_value(), 1);
  EXPECT_EQ(r.rows[0][1].int_value(), 130);
  EXPECT_EQ(r.rows[0][2].int_value(), 2);
}

TEST_F(EngineTest, NoDataRefreshWhenSourcesUnchanged) {
  Exec("CREATE TABLE src (k INT)");
  Exec("INSERT INTO src VALUES (1)");
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT k FROM src");
  RefreshOutcome outcome = ManualRefresh("dt");
  EXPECT_EQ(outcome.action, RefreshAction::kNoData);
  EXPECT_EQ(outcome.rows_processed, 0u);
  // The data timestamp still advanced (DVS upheld).
  EXPECT_EQ(Meta("dt").data_timestamp, clock_.Now());
  ExpectDvsInvariant("dt");
}

TEST_F(EngineTest, FullRefreshMode) {
  Exec("CREATE TABLE src (k INT)");
  Exec("INSERT INTO src VALUES (1)");
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "REFRESH_MODE = FULL AS SELECT k FROM src");
  EXPECT_FALSE(Meta("dt").incremental);
  clock_.Advance(kMicrosPerMinute);
  Exec("INSERT INTO src VALUES (2)");
  RefreshOutcome outcome = ManualRefresh("dt");
  EXPECT_EQ(outcome.action, RefreshAction::kFull);
  EXPECT_EQ(Q("SELECT * FROM dt").rows.size(), 2u);
  ExpectDvsInvariant("dt");
}

TEST_F(EngineTest, ScalarAggregateFallsBackToFull) {
  Exec("CREATE TABLE src (v INT)");
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT sum(v) AS total FROM src");
  EXPECT_FALSE(Meta("dt").incremental);  // paper: scalar aggregates full-only

  auto err = engine_.Execute(
      "CREATE DYNAMIC TABLE dt2 TARGET_LAG = '1 minute' WAREHOUSE = wh "
      "REFRESH_MODE = INCREMENTAL AS SELECT sum(v) AS total FROM src");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kUnsupported);
}

TEST_F(EngineTest, VolatileFunctionForcesFull) {
  Exec("CREATE TABLE src (v INT)");
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT v, random() AS r FROM src");
  EXPECT_FALSE(Meta("dt").incremental);
}

TEST_F(EngineTest, CurrentTimestampEvaluatesToDataTimestamp) {
  Exec("CREATE TABLE src (v INT)");
  Exec("INSERT INTO src VALUES (1)");
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT v, current_timestamp() AS at FROM src");
  EXPECT_TRUE(Meta("dt").incremental);  // context functions are fine
  QueryResult r = Q("SELECT at FROM dt");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].timestamp_value(), Meta("dt").data_timestamp);
  ExpectDvsInvariant("dt");
}

TEST_F(EngineTest, StackedDynamicTables) {
  Exec("CREATE TABLE events (user_id INT, amount INT)");
  Exec("INSERT INTO events VALUES (1, 5), (1, 7), (2, 3)");
  Exec("CREATE DYNAMIC TABLE by_user TARGET_LAG = DOWNSTREAM WAREHOUSE = wh "
       "AS SELECT user_id, sum(amount) AS total FROM events GROUP BY ALL");
  Exec("CREATE DYNAMIC TABLE big_users TARGET_LAG = '1 minute' "
       "WAREHOUSE = wh AS SELECT user_id FROM by_user WHERE total > 4");
  EXPECT_EQ(Q("SELECT * FROM big_users").rows.size(), 1u);

  clock_.Advance(kMicrosPerMinute);
  Exec("INSERT INTO events VALUES (2, 9)");
  ManualRefresh("big_users");  // refreshes by_user first at the same ts
  EXPECT_EQ(Q("SELECT * FROM big_users").rows.size(), 2u);
  ExpectDvsInvariant("by_user");
  ExpectDvsInvariant("big_users");
  // Both share the data timestamp (snapshot isolation across the chain).
  EXPECT_EQ(Meta("by_user").data_timestamp, Meta("big_users").data_timestamp);
}

TEST_F(EngineTest, InitializationReusesUpstreamTimestamp) {
  Exec("CREATE TABLE src (v INT)");
  Exec("INSERT INTO src VALUES (1)");
  Exec("CREATE DYNAMIC TABLE up TARGET_LAG = '10 minutes' WAREHOUSE = wh "
       "AS SELECT v FROM src");
  Micros up_ts = Meta("up").data_timestamp;

  clock_.Advance(kMicrosPerMinute);  // within the 10 minute lag
  Exec("CREATE DYNAMIC TABLE down TARGET_LAG = '10 minutes' WAREHOUSE = wh "
       "AS SELECT v FROM up");
  // §3.1.2: initialized to the upstream's existing data timestamp, which is
  // *before* this DT's creation time — no wasted re-refresh of `up`.
  EXPECT_EQ(Meta("down").data_timestamp, up_ts);
  EXPECT_LT(Meta("down").data_timestamp, clock_.Now());
  EXPECT_EQ(Meta("up").refresh_versions.size(), 1u);
}

TEST_F(EngineTest, InitializationRefreshesStaleUpstream) {
  Exec("CREATE TABLE src (v INT)");
  Exec("CREATE DYNAMIC TABLE up TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT v FROM src");
  clock_.Advance(30 * kMicrosPerMinute);  // upstream now far out of lag
  Exec("CREATE DYNAMIC TABLE down TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT v FROM up");
  // Upstream timestamp was outside the lag: both refreshed at creation time.
  EXPECT_EQ(Meta("down").data_timestamp, clock_.Now());
  EXPECT_EQ(Meta("up").data_timestamp, clock_.Now());
}

TEST_F(EngineTest, DropUpstreamFailsRefreshUndropResumes) {
  Exec("CREATE TABLE src (v INT)");
  Exec("INSERT INTO src VALUES (1)");
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT v FROM src");
  Exec("DROP TABLE src");
  clock_.Advance(kMicrosPerMinute);
  ObjectId id = engine_.ObjectIdOf("dt").value();
  auto fail = engine_.refresh_engine().Refresh(id, clock_.Now());
  ASSERT_FALSE(fail.ok());
  EXPECT_EQ(Meta("dt").consecutive_failures, 1);

  Exec("UNDROP TABLE src");
  clock_.Advance(kMicrosPerMinute);
  auto ok = engine_.refresh_engine().Refresh(id, clock_.Now());
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();  // §3.4: resumes unaided
  EXPECT_EQ(Meta("dt").consecutive_failures, 0);
  ExpectDvsInvariant("dt");
}

TEST_F(EngineTest, ReplacedUpstreamTriggersReinitialize) {
  Exec("CREATE TABLE src (v INT)");
  Exec("INSERT INTO src VALUES (1)");
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT v FROM src");
  Exec("CREATE OR REPLACE TABLE src (v INT)");
  Exec("INSERT INTO src VALUES (7), (8)");
  clock_.Advance(kMicrosPerMinute);
  ObjectId id = engine_.ObjectIdOf("dt").value();
  auto outcome = engine_.refresh_engine().Refresh(id, clock_.Now());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome.value().action, RefreshAction::kReinitialize);
  EXPECT_EQ(Q("SELECT * FROM dt").rows.size(), 2u);
  ExpectDvsInvariant("dt");
}

TEST_F(EngineTest, UserErrorCountsFailuresAndAutoSuspends) {
  Exec("CREATE TABLE src (v INT)");
  Exec("INSERT INTO src VALUES (1)");
  // Division by zero appears when v = 0 arrives (the paper's example).
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT 100 / v AS q FROM src");
  Exec("INSERT INTO src VALUES (0)");
  ObjectId id = engine_.ObjectIdOf("dt").value();
  for (int i = 0; i < 5; ++i) {
    clock_.Advance(kMicrosPerMinute);
    auto r = engine_.refresh_engine().Refresh(id, clock_.Now());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kUserError);
  }
  // §3.3.3: suspended after the failure threshold.
  EXPECT_EQ(Meta("dt").state, DtState::kSuspended);
  clock_.Advance(kMicrosPerMinute);
  auto r = engine_.refresh_engine().Refresh(id, clock_.Now());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);

  // Fix the data, resume, and the DT picks up from where it left off.
  Exec("DELETE FROM src WHERE v = 0");
  Exec("ALTER DYNAMIC TABLE dt RESUME");
  clock_.Advance(kMicrosPerMinute);
  auto ok = engine_.refresh_engine().Refresh(id, clock_.Now());
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  ExpectDvsInvariant("dt");
}

TEST_F(EngineTest, AlterRefreshSuspendResume) {
  Exec("CREATE TABLE src (v INT)");
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT v FROM src");
  clock_.Advance(kMicrosPerMinute);
  Exec("INSERT INTO src VALUES (5)");
  Exec("ALTER DYNAMIC TABLE dt REFRESH");
  EXPECT_EQ(Q("SELECT * FROM dt").rows.size(), 1u);
  Exec("ALTER DYNAMIC TABLE dt SUSPEND");
  EXPECT_EQ(Meta("dt").state, DtState::kSuspended);
  Exec("ALTER DYNAMIC TABLE dt RESUME");
  EXPECT_EQ(Meta("dt").state, DtState::kActive);
}

TEST_F(EngineTest, IsolationLevelClassification) {
  Exec("CREATE TABLE src (v INT)");
  Exec("INSERT INTO src VALUES (1)");
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT v FROM src");
  // Single-DT read: Snapshot Isolation (§4).
  EXPECT_EQ(Q("SELECT * FROM dt").isolation,
            QueryIsolation::kSnapshotIsolation);
  // DT joined with a base table: Read Committed.
  EXPECT_EQ(Q("SELECT * FROM dt d JOIN src s ON d.v = s.v").isolation,
            QueryIsolation::kReadCommitted);
  // Plain table read: Read Committed bucket.
  EXPECT_EQ(Q("SELECT * FROM src").isolation,
            QueryIsolation::kReadCommitted);
}

TEST_F(EngineTest, ViewsExpandInDtDefinitions) {
  Exec("CREATE TABLE src (v INT)");
  Exec("INSERT INTO src VALUES (1), (2), (3)");
  Exec("CREATE VIEW big AS SELECT v FROM src WHERE v > 1");
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT v FROM big");
  EXPECT_EQ(Q("SELECT * FROM dt").rows.size(), 2u);
  clock_.Advance(kMicrosPerMinute);
  Exec("INSERT INTO src VALUES (4)");
  RefreshOutcome outcome = ManualRefresh("dt");
  EXPECT_EQ(outcome.action, RefreshAction::kIncremental);
  EXPECT_EQ(Q("SELECT * FROM dt").rows.size(), 3u);
}

TEST_F(EngineTest, OuterJoinDtStaysConsistent) {
  Exec("CREATE TABLE l (k INT, lv INT)");
  Exec("CREATE TABLE r (k INT, rv INT)");
  Exec("INSERT INTO l VALUES (1, 10), (2, 20)");
  Exec("INSERT INTO r VALUES (2, 200), (3, 300)");
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT l.k AS lk, r.k AS rk, lv, rv "
       "FROM l FULL OUTER JOIN r ON l.k = r.k");
  EXPECT_EQ(Q("SELECT * FROM dt").rows.size(), 3u);

  clock_.Advance(kMicrosPerMinute);
  // Insert the match for the dangling left row and delete a right row:
  // null-extended rows must flip to matched and vice versa.
  Exec("INSERT INTO r VALUES (1, 100)");
  Exec("DELETE FROM r WHERE k = 2");
  RefreshOutcome outcome = ManualRefresh("dt");
  EXPECT_EQ(outcome.action, RefreshAction::kIncremental);
  ExpectDvsInvariant("dt");
}

TEST_F(EngineTest, WindowFunctionDtStaysConsistent) {
  Exec("CREATE TABLE src (grp STRING, v INT)");
  Exec("INSERT INTO src VALUES ('a', 3), ('a', 1), ('b', 9)");
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT grp, v, row_number() OVER (PARTITION BY grp ORDER BY v) rn "
       "FROM src");
  clock_.Advance(kMicrosPerMinute);
  Exec("INSERT INTO src VALUES ('a', 2)");  // shifts ranks within 'a'
  RefreshOutcome outcome = ManualRefresh("dt");
  EXPECT_EQ(outcome.action, RefreshAction::kIncremental);
  ExpectDvsInvariant("dt");
  QueryResult r = Q("SELECT rn FROM dt WHERE grp = 'a' ORDER BY v");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].int_value(), 1);
  EXPECT_EQ(r.rows[2][0].int_value(), 3);
}

TEST_F(EngineTest, DistinctDtStaysConsistent) {
  Exec("CREATE TABLE src (v INT)");
  Exec("INSERT INTO src VALUES (1), (1), (2)");
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT DISTINCT v FROM src");
  EXPECT_EQ(Q("SELECT * FROM dt").rows.size(), 2u);
  clock_.Advance(kMicrosPerMinute);
  Exec("DELETE FROM src WHERE v = 1");  // removes both copies
  ManualRefresh("dt");
  EXPECT_EQ(Q("SELECT * FROM dt").rows.size(), 1u);
  ExpectDvsInvariant("dt");

  clock_.Advance(kMicrosPerMinute);
  Exec("INSERT INTO src VALUES (2)");  // duplicate: DISTINCT output unchanged
  RefreshOutcome outcome = ManualRefresh("dt");
  EXPECT_EQ(outcome.changes_applied, 0u);
  ExpectDvsInvariant("dt");
}

TEST_F(EngineTest, TimeTravelAcrossRefreshes) {
  Exec("CREATE TABLE src (v INT)");
  Exec("INSERT INTO src VALUES (1)");
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT v FROM src");
  Micros ts1 = Meta("dt").data_timestamp;

  clock_.Advance(kMicrosPerMinute);
  Exec("INSERT INTO src VALUES (2)");
  ManualRefresh("dt");
  Micros ts2 = Meta("dt").data_timestamp;

  // Both historical results remain queryable via the refresh-version map.
  auto at1 = engine_.QueryAsOf("SELECT * FROM dt", ts1);
  auto at2 = engine_.QueryAsOf("SELECT * FROM dt", ts2);
  ASSERT_TRUE(at1.ok());
  ASSERT_TRUE(at2.ok());
  EXPECT_EQ(at1.value().size(), 1u);
  EXPECT_EQ(at2.value().size(), 2u);
}

TEST_F(EngineTest, RbacGrantsOnDt) {
  Exec("CREATE TABLE src (v INT)");
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT v FROM src");
  ObjectId id = engine_.ObjectIdOf("dt").value();
  Catalog& cat = engine_.catalog();
  EXPECT_TRUE(cat.HasPrivilege(id, "owner", Privilege::kOwnership));
  EXPECT_TRUE(cat.HasPrivilege(id, "owner", Privilege::kOperate));  // implied
  EXPECT_FALSE(cat.HasPrivilege(id, "analyst", Privilege::kMonitor));
  cat.Grant(id, "analyst", Privilege::kMonitor);
  EXPECT_TRUE(cat.HasPrivilege(id, "analyst", Privilege::kMonitor));
  EXPECT_FALSE(cat.HasPrivilege(id, "analyst", Privilege::kOperate));
  cat.Revoke(id, "analyst", Privilege::kMonitor);
  EXPECT_FALSE(cat.HasPrivilege(id, "analyst", Privilege::kMonitor));
}

TEST_F(EngineTest, DdlLogRecordsEverything) {
  Exec("CREATE TABLE src (v INT)");
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT v FROM src");
  Exec("DROP TABLE dt");
  const auto& log = engine_.catalog().ddl_log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].op, "CREATE TABLE");
  EXPECT_EQ(log[1].op, "CREATE DYNAMIC TABLE");
  EXPECT_EQ(log[2].op, "DROP");
  EXPECT_LT(log[0].ts, log[2].ts);
}

TEST_F(EngineTest, InsertOnlyOptimizationSkipsConsolidation) {
  Exec("CREATE TABLE src (v INT)");
  Exec("INSERT INTO src VALUES (1)");
  Exec("CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' WAREHOUSE = wh "
       "AS SELECT v FROM src WHERE v > 0");
  clock_.Advance(kMicrosPerMinute);
  Exec("INSERT INTO src VALUES (2)");
  RefreshOutcome outcome = ManualRefresh("dt");
  EXPECT_EQ(outcome.action, RefreshAction::kIncremental);
  EXPECT_TRUE(outcome.consolidation_skipped);  // §5.5.2
}

}  // namespace
}  // namespace dvs
