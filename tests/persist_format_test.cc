// Serialization round-trip tests for every persisted struct (persist/):
// primitive codecs, values/rows/change sets, WAL record payloads, the
// system image, and the framed record file (including torn-tail and
// corruption behavior).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "persist/format.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

namespace dvs {
namespace persist {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / ("dvs_format_test_" + name)).string();
}

TEST(EncoderTest, PrimitivesRoundTrip) {
  Encoder e;
  e.U8(200);
  e.Bool(true);
  e.U32(0xDEADBEEF);
  e.U64(0x1234567890ABCDEFull);
  e.I64(-42);
  e.I32(-7);
  e.F64(3.25);
  e.Str("hello");
  e.Str("");

  Decoder d(e.buf());
  EXPECT_EQ(d.U8(), 200);
  EXPECT_TRUE(d.Bool());
  EXPECT_EQ(d.U32(), 0xDEADBEEFu);
  EXPECT_EQ(d.U64(), 0x1234567890ABCDEFull);
  EXPECT_EQ(d.I64(), -42);
  EXPECT_EQ(d.I32(), -7);
  EXPECT_EQ(d.F64(), 3.25);
  EXPECT_EQ(d.Str(), "hello");
  EXPECT_EQ(d.Str(), "");
  EXPECT_TRUE(d.done());
}

TEST(EncoderTest, DecoderLatchesOnUnderflow) {
  Encoder e;
  e.U32(7);
  Decoder d(e.buf());
  EXPECT_EQ(d.U32(), 7u);
  EXPECT_EQ(d.U64(), 0u);  // underflow
  EXPECT_FALSE(d.ok());
  EXPECT_FALSE(d.status().ok());
}

TEST(EncoderTest, ValuesRoundTrip) {
  Row row = {Value::Null(),
             Value::Bool(false),
             Value::Int(-123456789),
             Value::Double(2.5),
             Value::String("snowflake"),
             Value::Timestamp(987654321),
             Value::MakeArray({Value::Int(1), Value::String("x"),
                               Value::MakeArray({Value::Null()})})};
  Encoder e;
  e.EncodeRow(row);
  Decoder d(e.buf());
  Row back = d.DecodeRow();
  ASSERT_TRUE(d.done());
  EXPECT_TRUE(RowsEqual(row, back));
  EXPECT_EQ(back[6].array_value().size(), 3u);
}

TEST(EncoderTest, ChangeSetAndSchemaRoundTrip) {
  ChangeSet cs = {{ChangeAction::kInsert, 7, {Value::Int(1)}},
                  {ChangeAction::kDelete, 9, {Value::String("gone")}}};
  Schema schema;
  schema.AddColumn("k", DataType::kInt64);
  schema.AddColumn("v", DataType::kString);

  Encoder e;
  e.EncodeChangeSet(cs);
  e.EncodeSchema(schema);
  Decoder d(e.buf());
  ChangeSet cs2 = d.DecodeChangeSet();
  Schema schema2 = d.DecodeSchema();
  ASSERT_TRUE(d.done());
  ASSERT_EQ(cs2.size(), 2u);
  EXPECT_EQ(cs2[0].action, ChangeAction::kInsert);
  EXPECT_EQ(cs2[1].row_id, 9u);
  EXPECT_TRUE(RowsEqual(cs2[1].values, cs[1].values));
  EXPECT_EQ(schema2, schema);
}

TEST(EncoderTest, TableVersionRoundTrip) {
  TableVersion v;
  v.id = 17;
  v.commit_ts = {12345, 3};
  v.live = {1, 4, 9};
  v.added = {9};
  v.removed = {2};
  v.row_count = 4096;
  v.data_equivalent = true;

  Encoder e;
  e.EncodeTableVersion(v);
  Decoder d(e.buf());
  TableVersion v2 = d.DecodeTableVersion();
  ASSERT_TRUE(d.done());
  EXPECT_EQ(v2.id, v.id);
  EXPECT_EQ(v2.commit_ts, v.commit_ts);
  EXPECT_EQ(v2.live, v.live);
  EXPECT_EQ(v2.added, v.added);
  EXPECT_EQ(v2.removed, v.removed);
  EXPECT_EQ(v2.row_count, v.row_count);
  EXPECT_TRUE(v2.data_equivalent);
}

TEST(WalCodecTest, CommitRoundTrip) {
  CommitImage c;
  c.ts = {777, 2};
  CommitImage::TableCommit t;
  t.object = 3;
  t.next_row_id = 101;
  t.changes = {{ChangeAction::kInsert, 100, {Value::Int(5), Value::Null()}}};
  c.tables.push_back(t);

  auto back = DecodeCommit(EncodeCommit(c));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().tables.size(), 1u);
  EXPECT_EQ(back.value().tables[0].object, 3u);
  EXPECT_EQ(back.value().tables[0].next_row_id, 101u);
  EXPECT_EQ(back.value().ts, c.ts);
}

TEST(WalCodecTest, DdlRoundTripEveryOp) {
  // CREATE TABLE
  {
    DdlImage d;
    d.op = DdlOp::kCreateTable;
    d.name = "t";
    d.ts = {5, 0};
    d.schema.AddColumn("a", DataType::kInt64);
    d.min_data_retention = 7 * kMicrosPerDay;
    auto back = DecodeDdl(EncodeDdl(d));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value().schema, d.schema);
    EXPECT_EQ(back.value().min_data_retention, d.min_data_retention);
  }
  // CREATE VIEW
  {
    DdlImage d;
    d.op = DdlOp::kCreateView;
    d.name = "v";
    d.sql = "SELECT a FROM t";
    auto back = DecodeDdl(EncodeDdl(d));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value().sql, d.sql);
  }
  // CREATE DYNAMIC TABLE
  {
    DdlImage d;
    d.op = DdlOp::kCreateDynamicTable;
    d.name = "dt";
    d.def.sql = "SELECT a, COUNT(*) FROM t GROUP BY a";
    d.def.target_lag = TargetLag::Of(5 * kMicrosPerMinute);
    d.def.warehouse = "wh";
    d.def.requested_mode = RefreshMode::kIncremental;
    d.def.initialize_on_create = false;
    d.def.min_data_retention = kMicrosPerDay;
    d.incremental = true;
    d.output_schema.AddColumn("a", DataType::kInt64);
    TrackedDependency dep;
    dep.name = "t";
    dep.object_id = 1;
    dep.schema_at_bind.AddColumn("a", DataType::kInt64);
    d.deps.push_back(dep);
    auto back = DecodeDdl(EncodeDdl(d));
    ASSERT_TRUE(back.ok());
    const DdlImage& b = back.value();
    EXPECT_EQ(b.def.sql, d.def.sql);
    EXPECT_EQ(b.def.target_lag.duration, d.def.target_lag.duration);
    EXPECT_EQ(b.def.warehouse, "wh");
    EXPECT_EQ(b.def.requested_mode, RefreshMode::kIncremental);
    EXPECT_FALSE(b.def.initialize_on_create);
    EXPECT_EQ(b.def.min_data_retention, kMicrosPerDay);
    EXPECT_TRUE(b.incremental);
    ASSERT_EQ(b.deps.size(), 1u);
    EXPECT_EQ(b.deps[0].name, "t");
    EXPECT_EQ(b.deps[0].schema_at_bind, dep.schema_at_bind);
  }
  // DROP / UNDROP / CLONE / ALTERs
  for (DdlOp op : {DdlOp::kDrop, DdlOp::kUndrop, DdlOp::kClone,
                   DdlOp::kAlterSuspend, DdlOp::kAlterResume}) {
    DdlImage d;
    d.op = op;
    d.name = "x";
    d.detail = op == DdlOp::kClone ? "src" : "";
    auto back = DecodeDdl(EncodeDdl(d));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value().op, op);
    EXPECT_EQ(back.value().detail, d.detail);
  }
  // ALTER SET TARGET_LAG
  {
    DdlImage d;
    d.op = DdlOp::kAlterTargetLag;
    d.name = "dt";
    d.lag = TargetLag::Downstream();
    auto back = DecodeDdl(EncodeDdl(d));
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(back.value().lag.downstream);
  }
}

TEST(WalCodecTest, RefreshRoundTrip) {
  RefreshImage r;
  r.dt = 9;
  r.refresh_ts = 96 * kMicrosPerSecond;
  r.action = 3;
  r.commit = 0;  // overwrite
  r.commit_ts = {96000001, 7};
  r.rows = {{1, {Value::Int(10)}}, {2, {Value::Int(20)}}};
  r.new_version = 5;
  r.frontier = {{2, 3}, {4, 1}};
  TrackedDependency dep;
  dep.name = "t";
  dep.object_id = 2;
  r.deps.push_back(dep);
  r.schema.AddColumn("v", DataType::kInt64);

  auto back = DecodeRefresh(EncodeRefresh(r));
  ASSERT_TRUE(back.ok());
  const RefreshImage& b = back.value();
  EXPECT_EQ(b.dt, 9u);
  EXPECT_EQ(b.refresh_ts, r.refresh_ts);
  EXPECT_EQ(b.commit_ts, r.commit_ts);
  ASSERT_EQ(b.rows.size(), 2u);
  EXPECT_EQ(b.rows[1].id, 2u);
  EXPECT_EQ(b.new_version, 5u);
  EXPECT_EQ(b.frontier, r.frontier);
  ASSERT_EQ(b.deps.size(), 1u);
  EXPECT_EQ(b.schema, r.schema);
}

TEST(WalCodecTest, SchedRecordRoundTrip) {
  SchedRecordImage s;
  s.record.dt = 4;
  s.record.dt_name = "dt";
  s.record.data_timestamp = 96 * kMicrosPerSecond;
  s.record.start_time = 97 * kMicrosPerSecond;
  s.record.end_time = 99 * kMicrosPerSecond;
  s.record.action = RefreshAction::kIncremental;
  s.record.rows_processed = 1234;
  s.record.changes_applied = 56;
  s.record.dt_row_count = 789;
  s.record.peak_lag = 3 * kMicrosPerSecond;
  s.record.trough_lag = kMicrosPerSecond;
  s.has_warehouse = true;
  s.warehouse = "wh";
  s.wh_size = 2;
  s.wh_auto_suspend = 60 * kMicrosPerSecond;
  s.wh_concurrency = 4;
  s.wh_pinned = true;
  s.wh_busy_until = 99 * kMicrosPerSecond;
  s.wh_billed = 10 * kMicrosPerSecond;
  s.wh_resumes = 2;

  auto back = DecodeSchedRecord(EncodeSchedRecord(s));
  ASSERT_TRUE(back.ok());
  const SchedRecordImage& b = back.value();
  EXPECT_EQ(b.record.dt_name, "dt");
  EXPECT_EQ(b.record.action, RefreshAction::kIncremental);
  EXPECT_EQ(b.record.rows_processed, 1234u);
  EXPECT_TRUE(b.has_warehouse);
  EXPECT_EQ(b.warehouse, "wh");
  EXPECT_EQ(b.wh_concurrency, 4);
  EXPECT_TRUE(b.wh_pinned);
  EXPECT_EQ(b.wh_billed, 10 * kMicrosPerSecond);
}

TEST(SystemImageTest, CaptureEncodeDecodeInstall) {
  VirtualClock clock(1000);
  DvsEngine engine(clock);
  ASSERT_TRUE(engine.Execute("CREATE TABLE t (k INT, s TEXT)").ok());
  ASSERT_TRUE(
      engine.Execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, NULL)")
          .ok());
  ASSERT_TRUE(engine.Execute("CREATE VIEW v AS SELECT k FROM t").ok());
  ASSERT_TRUE(engine
                  .Execute("CREATE DYNAMIC TABLE dt TARGET_LAG = '1 minute' "
                           "WAREHOUSE = wh AS SELECT k, COUNT(*) AS c FROM t "
                           "GROUP BY k")
                  .ok());
  ASSERT_TRUE(engine.Execute("DELETE FROM t WHERE k = 2").ok());

  SchedulerPersistState sched;
  sched.last_run = 96 * kMicrosPerSecond;
  RefreshRecord rec;
  rec.dt = engine.ObjectIdOf("dt").value();
  rec.dt_name = "dt";
  sched.log.push_back(rec);

  SystemImage image = CaptureSystemImage(engine, &sched);
  std::string bytes = EncodeSystemImage(image);
  auto decoded = DecodeSystemImage(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  // The decoded image re-encodes identically (codec is its own inverse).
  EXPECT_EQ(EncodeSystemImage(decoded.value()), bytes);

  // Install into a fresh engine: same catalog contents, same query results,
  // same fingerprint.
  VirtualClock clock2(0);
  DvsEngine engine2(clock2);
  SchedulerPersistState sched2;
  ASSERT_TRUE(
      InstallSystemImage(decoded.value(), &engine2, &sched2).ok());
  clock2.AdvanceTo(clock.Now());

  EXPECT_EQ(sched2.last_run, sched.last_run);
  ASSERT_EQ(sched2.log.size(), 1u);
  EXPECT_EQ(sched2.log[0].dt_name, "dt");

  auto q1 = engine.Query("SELECT k, s FROM t ORDER BY k");
  auto q2 = engine2.Query("SELECT k, s FROM t ORDER BY k");
  ASSERT_TRUE(q1.ok() && q2.ok());
  ASSERT_EQ(q1.value().rows.size(), q2.value().rows.size());
  for (size_t i = 0; i < q1.value().rows.size(); ++i) {
    EXPECT_TRUE(RowsEqual(q1.value().rows[i], q2.value().rows[i]));
  }
  EXPECT_EQ(EncodeSystemImage(CaptureSystemImage(engine2, &sched2)), bytes);

  // Row-id index content survives (rebuilt from partitions).
  const CatalogObject* t1 = engine.catalog().Find("t").value();
  const CatalogObject* t2 = engine2.catalog().Find("t").value();
  for (const IdRow& row : t1->storage->ScanLatest()) {
    const RowLocation* l1 = t1->storage->FindRow(row.id);
    const RowLocation* l2 = t2->storage->FindRow(row.id);
    ASSERT_NE(l1, nullptr);
    ASSERT_NE(l2, nullptr);
    EXPECT_EQ(l1->partition, l2->partition);
    EXPECT_EQ(l1->offset, l2->offset);
  }
}

TEST(RecordFileTest, WriteReadRoundTrip) {
  std::string path = TempPath("roundtrip.bin");
  {
    RecordFileWriter w;
    ASSERT_TRUE(w.Open(path, kWalMagic, 7).ok());
    ASSERT_TRUE(w.Append(1, "first").ok());
    ASSERT_TRUE(w.Append(2, "").ok());
    ASSERT_TRUE(w.Append(3, std::string(100000, 'x')).ok());
  }
  auto file = ReadRecordFile(path, kWalMagic, false);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file.value().seq, 7u);
  ASSERT_EQ(file.value().records.size(), 3u);
  EXPECT_EQ(file.value().records[0].payload, "first");
  EXPECT_EQ(file.value().records[1].type, 2);
  EXPECT_EQ(file.value().records[2].payload.size(), 100000u);
  EXPECT_FALSE(file.value().torn_tail);
  std::remove(path.c_str());
}

TEST(RecordFileTest, TornTailToleratedForWal) {
  std::string path = TempPath("torn.bin");
  {
    RecordFileWriter w;
    ASSERT_TRUE(w.Open(path, kWalMagic, 1).ok());
    ASSERT_TRUE(w.Append(1, "keep-me").ok());
    ASSERT_TRUE(w.Append(2, "torn-away").ok());
  }
  // Truncate mid-way through the second record.
  auto full = ReadRecordFile(path, kWalMagic, false);
  ASSERT_TRUE(full.ok());
  uint64_t cut = full.value().records[0].end_offset + 5;
  fs::resize_file(path, cut);

  auto torn = ReadRecordFile(path, kWalMagic, true);
  ASSERT_TRUE(torn.ok());
  ASSERT_EQ(torn.value().records.size(), 1u);
  EXPECT_EQ(torn.value().records[0].payload, "keep-me");
  EXPECT_TRUE(torn.value().torn_tail);

  // Checkpoint semantics reject the same file.
  EXPECT_FALSE(ReadRecordFile(path, kWalMagic, false).ok());
  std::remove(path.c_str());
}

TEST(RecordFileTest, CorruptionDetectedByCrc) {
  std::string path = TempPath("crc.bin");
  {
    RecordFileWriter w;
    ASSERT_TRUE(w.Open(path, kWalMagic, 1).ok());
    ASSERT_TRUE(w.Append(1, "payload-abcdef").ok());
  }
  // Flip a byte inside the payload.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-3, std::ios::end);
    f.put('Z');
  }
  auto torn = ReadRecordFile(path, kWalMagic, true);
  ASSERT_TRUE(torn.ok());
  EXPECT_TRUE(torn.value().records.empty());
  EXPECT_TRUE(torn.value().torn_tail);
  EXPECT_FALSE(ReadRecordFile(path, kWalMagic, false).ok());
  std::remove(path.c_str());
}

TEST(RecordFileTest, WrongMagicRejected) {
  std::string path = TempPath("magic.bin");
  {
    RecordFileWriter w;
    ASSERT_TRUE(w.Open(path, kCheckpointMagic, 1).ok());
    ASSERT_TRUE(w.Append(1, "x").ok());
  }
  EXPECT_FALSE(ReadRecordFile(path, kWalMagic, true).ok());
  EXPECT_TRUE(ReadRecordFile(path, kCheckpointMagic, true).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace persist
}  // namespace dvs
