// Chaos tests: deterministic fault injection driven through the scheduler,
// refresh engine, runtime, and durability stack end to end.
//
// The contract under test (ROADMAP "Robustness architecture"):
//  - transient faults (kUnavailable / kResourceExhausted) are retried with
//    capped exponential backoff in virtual time and NEVER count toward
//    consecutive_failures / auto-suspend;
//  - exhausted retries degrade gracefully: a failed record carrying the
//    status code, attempt count, and accumulated backoff; downstream DTs log
//    upstream-missing skips; the pipeline converges once faults stop;
//  - permanent faults keep the pre-existing semantics (RecordFailure,
//    auto-suspend after max_consecutive_failures);
//  - injected chaos is byte-deterministic per seed at any worker count;
//  - persist-layer faults surface in Manager::wal_status while the WAL on
//    disk stays a replayable prefix.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fault/injector.h"
#include "persist/manager.h"
#include "persist/recover.h"
#include "sched/scheduler.h"

namespace dvs {
namespace {

namespace fs = std::filesystem;

/// Three-DT pipeline over one source: `flaky` (warehouse whf) is the fault
/// target, `down` (whd) consumes it, `steady` (whs) is the control that must
/// never be collaterally damaged by faults scoped to the others.
struct Harness {
  VirtualClock clock;
  DvsEngine engine;
  std::unique_ptr<Scheduler> sched;

  explicit Harness(int workers, SchedulerOptions base = SchedulerOptions())
      : clock(0), engine(clock) {
    Exec("CREATE TABLE src (k INT, v INT)");
    Exec("INSERT INTO src VALUES (1, 10), (2, 20), (3, 30)");
    Exec("CREATE DYNAMIC TABLE flaky TARGET_LAG = '2 minutes' "
         "WAREHOUSE = whf AS SELECT k, SUM(v) AS s FROM src GROUP BY k");
    Exec("CREATE DYNAMIC TABLE down TARGET_LAG = '4 minutes' "
         "WAREHOUSE = whd AS SELECT k, s * 2 AS s2 FROM flaky");
    Exec("CREATE DYNAMIC TABLE steady TARGET_LAG = '2 minutes' "
         "WAREHOUSE = whs AS SELECT k, v + 1 AS v1 FROM src");
    base.worker_threads = workers;
    sched = std::make_unique<Scheduler>(&engine, &clock, base);
  }

  void Exec(const std::string& sql) {
    auto r = engine.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }

  /// `n` rounds of one insert + a 2-minute RunUntil each, starting at round
  /// index `start` (so a paused run can continue on the same tick grid).
  void Rounds(int start, int n) {
    for (int i = start; i < start + n; ++i) {
      Exec("INSERT INTO src VALUES (" + std::to_string(100 + i) + ", " +
           std::to_string(i + 1) + ")");
      sched->RunUntil((i + 1) * 2 * kMicrosPerMinute);
    }
  }

  const DynamicTableMeta* Meta(const std::string& name) {
    return engine.catalog().Find(name).value()->dt.get();
  }

  std::vector<RefreshRecord> RecordsFor(const std::string& name) {
    std::vector<RefreshRecord> out;
    for (const RefreshRecord& r : sched->log()) {
      if (r.dt_name == name) out.push_back(r);
    }
    return out;
  }

  std::vector<std::string> Contents(const std::string& dt) {
    auto q = engine.Query("SELECT * FROM " + dt);
    if (!q.ok()) return {"<error: " + q.status().ToString() + ">"};
    std::vector<std::string> rows;
    for (const Row& r : q.value().rows) {
      std::string line;
      for (const Value& v : r) line += v.ToString() + "|";
      rows.push_back(std::move(line));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  }
};

std::string LogBytes(const std::vector<RefreshRecord>& log) {
  persist::Encoder e;
  for (const RefreshRecord& r : log) persist::EncodeRefreshRecordInto(&e, r);
  return e.Take();
}

class ChaosTest : public ::testing::TestWithParam<int> {};

// A transient fault burns retry attempts inside the tick, then succeeds:
// the refresh-log record is a *success* carrying the attempt count and the
// virtual-time backoff it paid, and no failure counter moved.
TEST_P(ChaosTest, TransientFaultRetriesInlineThenSucceeds) {
  Harness h(GetParam());
  fault::FaultInjector inj(7);
  fault::SiteConfig cfg;
  cfg.probability = 1.0;
  cfg.max_fires = 2;  // < retry_max_attempts: the third attempt goes through
  cfg.scope_filter = "flaky";
  cfg.message = "replica flap";
  inj.Arm(fault::kSiteRefreshExecute, cfg);
  fault::ScopedInjector active(&inj);

  h.Rounds(0, 3);

  std::vector<RefreshRecord> flaky = h.RecordsFor("flaky");
  ASSERT_GE(flaky.size(), 2u);
  const RefreshRecord& first = flaky[0];
  EXPECT_FALSE(first.failed);
  EXPECT_FALSE(first.skipped);
  EXPECT_EQ(first.attempts, 3);
  // Capped exponential backoff: 1s + 2s with the default base of 1 second.
  EXPECT_EQ(first.retry_backoff, 3 * kMicrosPerSecond);
  // The backoff delays the refresh slot like an upstream completion would.
  EXPECT_GE(first.start_time, first.data_timestamp + 3 * kMicrosPerSecond);
  for (size_t i = 1; i < flaky.size(); ++i) {
    EXPECT_EQ(flaky[i].attempts, 1) << "record " << i;
    EXPECT_EQ(flaky[i].retry_backoff, 0) << "record " << i;
  }

  EXPECT_EQ(h.Meta("flaky")->consecutive_failures, 0);
  EXPECT_EQ(h.Meta("flaky")->transient_failures, 0);  // reset on success
  EXPECT_EQ(h.Meta("flaky")->state, DtState::kActive);
}

// Retries exhausted every tick: failed records carry code / attempts /
// backoff, the DT never auto-suspends however long the outage lasts, the
// downstream degrades to upstream-missing skips, and once the fault stops
// the pipeline converges to a fault-free run's contents.
TEST_P(ChaosTest, ExhaustedRetriesDegradeGracefullyAndConverge) {
  Harness h(GetParam());
  {
    fault::FaultInjector inj(11);
    fault::SiteConfig cfg;
    cfg.probability = 1.0;
    cfg.scope_filter = "flaky";
    cfg.message = "storage unreachable";
    inj.Arm(fault::kSiteRefreshExecute, cfg);
    fault::ScopedInjector active(&inj);

    h.Rounds(0, 6);

    int failed = 0;
    for (const RefreshRecord& r : h.RecordsFor("flaky")) {
      ASSERT_TRUE(r.failed) << r.error;
      EXPECT_EQ(r.error_code, StatusCode::kUnavailable);
      EXPECT_EQ(r.attempts, 3);
      EXPECT_EQ(r.retry_backoff, 3 * kMicrosPerSecond);
      EXPECT_EQ(r.end_time, r.start_time + 3 * kMicrosPerSecond);
      EXPECT_NE(r.error.find("storage unreachable"), std::string::npos);
      ++failed;
    }
    EXPECT_GE(failed, 5);  // well past the auto-suspend threshold

    // Transient failures never feed auto-suspend accounting.
    EXPECT_EQ(h.Meta("flaky")->consecutive_failures, 0);
    EXPECT_EQ(h.Meta("flaky")->state, DtState::kActive);
    EXPECT_EQ(h.Meta("flaky")->transient_failures, 3 * failed);

    // Downstream degradation: no upstream version at its data timestamps.
    int down_skips = 0;
    for (const RefreshRecord& r : h.RecordsFor("down")) {
      if (!r.skipped) continue;
      EXPECT_EQ(r.error_code, StatusCode::kUnavailable);
      EXPECT_NE(r.error.find("upstream"), std::string::npos);
      ++down_skips;
    }
    EXPECT_GT(down_skips, 0);

    // The control DT on its own warehouse is untouched.
    for (const RefreshRecord& r : h.RecordsFor("steady")) {
      EXPECT_FALSE(r.failed) << r.error;
    }
  }  // injector uninstalled: faults stop

  h.Rounds(6, 3);
  EXPECT_EQ(h.Meta("flaky")->transient_failures, 0);
  EXPECT_EQ(h.Meta("flaky")->consecutive_failures, 0);

  // Convergence: identical contents to a run that never saw a fault.
  Harness clean(GetParam());
  clean.Rounds(0, 9);
  for (const char* dt : {"flaky", "down", "steady"}) {
    EXPECT_EQ(h.Contents(dt), clean.Contents(dt)) << dt;
  }
}

// A backoff longer than the refresh period spills into the next tick as a
// busy-skip — retrying crosses tick boundaries through the existing
// busy_until_ machinery, not a separate queue.
TEST_P(ChaosTest, LongBackoffSpillsIntoNextTickBusySkip) {
  SchedulerOptions opts;
  opts.retry_base = 30 * kMicrosPerSecond;
  opts.retry_cap = 60 * kMicrosPerSecond;
  Harness h(GetParam(), opts);
  fault::FaultInjector inj(3);
  fault::SiteConfig cfg;
  cfg.probability = 1.0;
  cfg.max_fires = 3;  // exactly one tick's worth of exhausted attempts
  cfg.scope_filter = "flaky";
  inj.Arm(fault::kSiteRefreshExecute, cfg);
  fault::ScopedInjector active(&inj);

  h.Rounds(0, 3);

  std::vector<RefreshRecord> flaky = h.RecordsFor("flaky");
  ASSERT_GE(flaky.size(), 3u);
  // Tick 1: all three attempts fail; backoff = 30s + 60s (capped) = 90s,
  // which reaches past the 48-second refresh period.
  EXPECT_TRUE(flaky[0].failed);
  EXPECT_EQ(flaky[0].retry_backoff, 90 * kMicrosPerSecond);
  EXPECT_EQ(flaky[0].end_time, flaky[0].start_time + 90 * kMicrosPerSecond);
  // Tick 2: still inside the backoff window -> busy-skip.
  EXPECT_TRUE(flaky[1].skipped);
  EXPECT_TRUE(flaky[1].error.empty());
  // Tick 3: fault spent, refresh succeeds.
  EXPECT_FALSE(flaky[2].failed);
  EXPECT_FALSE(flaky[2].skipped);
  EXPECT_EQ(flaky[2].attempts, 1);
}

// A warehouse outage is decided once per tick in the serial plan phase: the
// DT's refresh never starts, the record is a transient failure scoped to
// that warehouse, and DTs on other warehouses are untouched.
TEST_P(ChaosTest, WarehouseOutageIsTransientAndScoped) {
  Harness h(GetParam());
  fault::FaultInjector inj(13);
  fault::SiteConfig cfg;
  cfg.probability = 1.0;
  cfg.max_fires = 2;  // a two-tick outage
  cfg.scope_filter = "whf";
  cfg.message = "warehouse offline";
  inj.Arm(fault::kSiteWarehouseOutage, cfg);
  fault::ScopedInjector active(&inj);

  h.Rounds(0, 4);

  std::vector<RefreshRecord> flaky = h.RecordsFor("flaky");
  ASSERT_GE(flaky.size(), 3u);
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(flaky[i].failed) << "tick " << i;
    EXPECT_EQ(flaky[i].error_code, StatusCode::kUnavailable);
    EXPECT_NE(flaky[i].error.find("warehouse.outage"), std::string::npos);
    EXPECT_NE(flaky[i].error.find("whf"), std::string::npos);
    // The engine never ran: no attempts, no duration.
    EXPECT_EQ(flaky[i].attempts, 0);
    EXPECT_EQ(flaky[i].start_time, flaky[i].end_time);
  }
  EXPECT_FALSE(flaky[2].failed);  // back online

  for (const RefreshRecord& r : h.RecordsFor("steady")) {
    EXPECT_FALSE(r.failed) << r.error;
  }
  EXPECT_EQ(h.Meta("flaky")->consecutive_failures, 0);
  EXPECT_EQ(h.Meta("flaky")->transient_failures, 0);  // reset by recovery
  EXPECT_EQ(h.Meta("flaky")->state, DtState::kActive);
}

// Permanent faults keep the paper's semantics: each failure increments
// consecutive_failures, the DT auto-suspends at the threshold, and ALTER
// RESUME + fault removal fully recovers it.
TEST_P(ChaosTest, PermanentFaultsStillAutoSuspend) {
  Harness h(GetParam());
  fault::FaultInjector inj(17);
  fault::SiteConfig cfg;
  cfg.probability = 1.0;
  cfg.scope_filter = "flaky";
  cfg.code = StatusCode::kInternal;  // not retryable
  cfg.message = "disk melted";
  inj.Arm(fault::kSiteRefreshExecute, cfg);
  {
    fault::ScopedInjector active(&inj);
    h.Rounds(0, 6);
  }

  std::vector<RefreshRecord> flaky = h.RecordsFor("flaky");
  int failed = 0;
  for (const RefreshRecord& r : flaky) {
    if (!r.failed) continue;
    EXPECT_EQ(r.error_code, StatusCode::kInternal);
    EXPECT_EQ(r.attempts, 1);  // permanent failures are not retried
    EXPECT_EQ(r.retry_backoff, 0);
    ++failed;
  }
  // Exactly max_consecutive_failures records, then silence: suspended DTs
  // are not planned at all.
  EXPECT_EQ(failed, 5);
  EXPECT_EQ(static_cast<int>(flaky.size()), failed);
  EXPECT_EQ(h.Meta("flaky")->state, DtState::kSuspended);
  EXPECT_EQ(h.Meta("flaky")->consecutive_failures, 5);
  EXPECT_EQ(h.Meta("flaky")->transient_failures, 0);

  // Operator intervention: resume with the fault gone.
  h.Exec("ALTER DYNAMIC TABLE flaky RESUME");
  EXPECT_EQ(h.Meta("flaky")->consecutive_failures, 0);
  h.Rounds(6, 2);
  EXPECT_EQ(h.Meta("flaky")->state, DtState::kActive);
  EXPECT_FALSE(h.RecordsFor("flaky").back().failed);
}

// An exception thrown on a pool worker thread (the runtime.worker site fires
// inside the DAG runner's task wrapper) surfaces as a failed refresh record
// via the scheduler's failed-run fallback — never a crash or a hang.
TEST(ChaosRuntimeTest, WorkerExceptionBecomesFailedRecord) {
  Harness h(/*workers=*/4);
  fault::FaultInjector inj(19);
  fault::SiteConfig cfg;
  cfg.probability = 1.0;
  cfg.max_fires = 1;
  cfg.scope_filter = "whf";  // the task's gate is its warehouse
  inj.Arm(fault::kSiteRuntimeWorker, cfg);
  fault::ScopedInjector active(&inj);

  h.Rounds(0, 3);

  std::vector<RefreshRecord> flaky = h.RecordsFor("flaky");
  ASSERT_GE(flaky.size(), 2u);
  EXPECT_TRUE(flaky[0].failed);
  EXPECT_EQ(flaky[0].error_code, StatusCode::kInternal);
  EXPECT_NE(flaky[0].error.find("refresh task threw"), std::string::npos);
  EXPECT_NE(flaky[0].error.find("runtime.worker"), std::string::npos);
  EXPECT_FALSE(flaky[1].failed);  // the pool and runner survived

  // Tasks that completed before the throw keep their results.
  for (const RefreshRecord& r : h.RecordsFor("steady")) {
    EXPECT_FALSE(r.failed) << r.error;
  }
}

// The headline determinism gate: the same seed produces byte-identical
// refresh logs and identical DT contents at worker_threads 0 and 4, and on
// repeated runs.
TEST(ChaosDeterminismTest, SameSeedIsByteIdenticalAcrossWorkerCounts) {
  auto run = [](int workers) {
    Harness h(workers);
    fault::FaultInjector inj(20250807);
    fault::SiteConfig refresh;
    refresh.probability = 0.25;
    refresh.message = "injected refresh flap";
    inj.Arm(fault::kSiteRefreshExecute, refresh);
    fault::SiteConfig outage;
    outage.probability = 0.15;
    outage.burst = 2;
    outage.message = "injected outage";
    inj.Arm(fault::kSiteWarehouseOutage, outage);
    fault::ScopedInjector active(&inj);
    h.Rounds(0, 8);
    std::pair<std::string, std::map<std::string, std::vector<std::string>>>
        out;
    out.first = LogBytes(h.sched->log());
    for (const char* dt : {"flaky", "down", "steady"}) {
      out.second[dt] = h.Contents(dt);
    }
    return out;
  };

  auto serial = run(0);
  auto parallel = run(4);
  auto parallel_again = run(4);
  EXPECT_EQ(serial.first, parallel.first)
      << "chaos log diverges between worker counts";
  EXPECT_EQ(parallel.first, parallel_again.first)
      << "chaos log not reproducible at the same worker count";
  EXPECT_EQ(serial.second, parallel.second);
}

// ---- Persist-layer faults ----

std::string UniqueDir(const std::string& tag) {
  static int counter = 0;
  std::string dir =
      (fs::temp_directory_path() /
       ("dvs_chaos_" + tag + "_" + std::to_string(::getpid()) + "_" +
        std::to_string(counter++)))
          .string();
  fs::remove_all(dir);
  return dir;
}

TEST(ChaosPersistTest, AppendErrorSurfacesInWalStatusAndEngineKeepsRunning) {
  const std::string dir = UniqueDir("append_error");
  VirtualClock clock(0);
  DvsEngine engine(clock);
  auto manager = persist::Manager::Open({dir}).take();
  ASSERT_TRUE(manager->Attach(&engine).ok());
  ASSERT_TRUE(engine.Execute("CREATE TABLE t (a INT)").ok());

  fault::FaultInjector inj(23);
  fault::SiteConfig cfg;
  cfg.probability = 1.0;
  cfg.max_fires = 1;
  cfg.kind = fault::FaultKind::kError;
  cfg.scope_filter = "wal-";  // WAL appends only, not checkpoint writes
  cfg.message = "sink rejected write";
  inj.Arm(fault::kSitePersistFileAppend, cfg);
  fault::ScopedInjector active(&inj);

  // The hook path cannot propagate a Status; the first append error is
  // latched in wal_status while the engine itself keeps accepting DML.
  ASSERT_TRUE(engine.Execute("INSERT INTO t VALUES (1)").ok());
  Status ws = manager->wal_status();
  ASSERT_FALSE(ws.ok());
  EXPECT_NE(ws.message().find("persist.file.append"), std::string::npos);
  EXPECT_NE(ws.message().find("sink rejected write"), std::string::npos);

  ASSERT_TRUE(engine.Execute("INSERT INTO t VALUES (2)").ok());
  // Recovery still works from the surviving prefix + later appends.
  VirtualClock rclock(0);
  auto recovered = persist::Recover(dir, &rclock);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
}

TEST(ChaosPersistTest, ShortWriteIsRewoundLeavingAReplayablePrefix) {
  const std::string dir = UniqueDir("short_write");
  VirtualClock clock(0);
  DvsEngine engine(clock);
  auto manager = persist::Manager::Open({dir}).take();
  ASSERT_TRUE(manager->Attach(&engine).ok());
  ASSERT_TRUE(engine.Execute("CREATE TABLE t (a INT)").ok());

  fault::FaultInjector inj(29);
  fault::SiteConfig cfg;
  cfg.probability = 1.0;
  cfg.max_fires = 1;
  cfg.kind = fault::FaultKind::kShortWrite;
  cfg.scope_filter = "wal-";
  inj.Arm(fault::kSitePersistFileAppend, cfg);
  fault::ScopedInjector active(&inj);

  ASSERT_TRUE(engine.Execute("INSERT INTO t VALUES (1)").ok());
  Status ws = manager->wal_status();
  ASSERT_FALSE(ws.ok());
  EXPECT_NE(ws.message().find("short write"), std::string::npos);
  ASSERT_TRUE(engine.Execute("INSERT INTO t VALUES (2)").ok());

  // The writer rewound the torn frame: the segment on disk has a clean tail
  // and contains the appends made after the fault.
  auto wal = persist::ReadWalSegment(
      persist::WalPath(dir, manager->generation()));
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_FALSE(wal.value().torn_tail) << wal.value().torn_reason;
  EXPECT_GT(wal.value().records.size(), 0u);

  VirtualClock rclock(0);
  auto recovered = persist::Recover(dir, &rclock);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
}

TEST(ChaosPersistTest, CorruptByteReadsBackAsTornTailAtTheRightOffset) {
  const std::string dir = UniqueDir("corrupt");
  VirtualClock clock(0);
  DvsEngine engine(clock);
  auto manager = persist::Manager::Open({dir}).take();
  ASSERT_TRUE(manager->Attach(&engine).ok());
  ASSERT_TRUE(engine.Execute("CREATE TABLE t (a INT)").ok());
  size_t intact = static_cast<size_t>(manager->wal_records());

  fault::FaultInjector inj(31);
  fault::SiteConfig cfg;
  cfg.probability = 1.0;
  cfg.max_fires = 1;
  cfg.kind = fault::FaultKind::kCorruptByte;
  cfg.scope_filter = "wal-";
  inj.Arm(fault::kSitePersistFileAppend, cfg);
  fault::ScopedInjector active(&inj);

  // Bit rot is silent at write time: the append "succeeds".
  ASSERT_TRUE(engine.Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_TRUE(manager->wal_status().ok());
  ASSERT_TRUE(engine.Execute("INSERT INTO t VALUES (2)").ok());

  // Read-side CRC catches it: torn tail exactly at the corrupted frame, the
  // prefix before it intact (what wal_dump --verify reports with exit 3).
  auto wal = persist::ReadWalSegment(
      persist::WalPath(dir, manager->generation()));
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_TRUE(wal.value().torn_tail);
  EXPECT_NE(wal.value().torn_reason.find("CRC mismatch"), std::string::npos);
  EXPECT_EQ(wal.value().records.size(), intact);

  // Recovery degrades to the replayable prefix instead of failing.
  VirtualClock rclock(0);
  auto recovered = persist::Recover(dir, &rclock);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
}

TEST(ChaosPersistTest, CheckpointRotationFailureLeavesOldGenerationLive) {
  const std::string dir = UniqueDir("rotation");
  VirtualClock clock(0);
  DvsEngine engine(clock);
  auto manager = persist::Manager::Open({dir}).take();
  ASSERT_TRUE(manager->Attach(&engine).ok());
  ASSERT_TRUE(engine.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(engine.Execute("INSERT INTO t VALUES (1)").ok());
  const uint64_t gen = manager->generation();

  fault::FaultInjector inj(37);
  fault::SiteConfig cfg;
  cfg.probability = 1.0;
  cfg.max_fires = 1;
  cfg.scope_filter = "checkpoint-";
  cfg.message = "disk full";
  inj.Arm(fault::kSitePersistFileOpen, cfg);
  fault::ScopedInjector active(&inj);

  // The failed checkpoint must not advance the generation...
  Status s = manager->Checkpoint(nullptr);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("disk full"), std::string::npos);
  EXPECT_EQ(manager->generation(), gen);

  // ...and the previous generation stays authoritative and recoverable.
  VirtualClock rclock(0);
  auto recovered = persist::Recover(dir, &rclock);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  auto rows = recovered.value().engine->Query("SELECT a FROM t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().rows.size(), 1u);

  // Once the fault clears, checkpointing resumes.
  Status again = manager->Checkpoint(nullptr);
  EXPECT_TRUE(again.ok()) << again.ToString();
  EXPECT_EQ(manager->generation(), gen + 1);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ChaosTest, ::testing::Values(0, 4));

}  // namespace
}  // namespace dvs
