// Tests for the persistent row-id index of VersionedTable: build,
// incremental maintenance across versions, FULL-overwrite rebuild,
// unaffected time travel, and the O(changes) delete path (verified through
// StorageStats: lookup count == delete change count).

#include <gtest/gtest.h>

#include <algorithm>

#include "storage/versioned_table.h"

namespace dvs {
namespace {

Schema TwoCol() {
  return Schema({{"id", DataType::kInt64}, {"name", DataType::kString}});
}

Row R(int64_t id, const char* name) {
  return {Value::Int(id), Value::String(name)};
}

std::vector<Row> ManyRows(int n, int start = 0) {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int i = start; i < start + n; ++i) {
    rows.push_back(R(i, ("r" + std::to_string(i)).c_str()));
  }
  return rows;
}

TEST(RowIndexTest, BuildOnInsert) {
  VersionedTable t(TwoCol(), /*max_partition_rows=*/4);
  ChangeSet cs = t.MakeInsertChanges(ManyRows(10));
  ASSERT_TRUE(t.ApplyChanges(cs, {10, 0}).ok());

  for (const ChangeRow& c : cs) {
    const RowLocation* loc = t.FindRow(c.row_id);
    ASSERT_NE(loc, nullptr);
    EXPECT_GE(loc->partition, 1u);
    EXPECT_LT(loc->offset, 4u);  // partitions hold at most 4 rows
  }
  EXPECT_EQ(t.FindRow(9999), nullptr);
  EXPECT_EQ(t.stats().index_entries_added, 10u);
}

TEST(RowIndexTest, DeleteLookupsEqualDeleteChangeCount) {
  // The acceptance criterion for the O(changes) delete path: ApplyChanges
  // locates deletes purely through the index — exactly one point lookup per
  // delete change, independent of table size or partition count.
  VersionedTable t(TwoCol(), /*max_partition_rows=*/4);
  ChangeSet inserts = t.MakeInsertChanges(ManyRows(100));
  ASSERT_TRUE(t.ApplyChanges(inserts, {10, 0}).ok());
  ASSERT_EQ(t.stats().index_lookups, 0u);  // inserts never look up

  ChangeSet deletes;
  for (size_t i = 0; i < inserts.size(); i += 10) {
    deletes.push_back(
        {ChangeAction::kDelete, inserts[i].row_id, inserts[i].values});
  }
  const uint64_t before = t.stats().index_lookups;
  ASSERT_TRUE(t.ApplyChanges(deletes, {20, 0}).ok());
  EXPECT_EQ(t.stats().index_lookups - before, deletes.size());
  EXPECT_EQ(t.stats().index_entries_removed, deletes.size());

  // Deleted ids are gone from the index; survivors remain.
  for (const ChangeRow& d : deletes) EXPECT_EQ(t.FindRow(d.row_id), nullptr);
  EXPECT_NE(t.FindRow(inserts[1].row_id), nullptr);
  EXPECT_EQ(t.RowCountAt(t.latest_version()), 90u);
}

TEST(RowIndexTest, LocationsAreExact) {
  // Deleting one row must rewrite only its own partition: with 8 rows in
  // 4-row partitions, the copy-on-write survivor count is exactly 3 — which
  // is only possible if the index pointed at the right partition.
  VersionedTable t(TwoCol(), /*max_partition_rows=*/4);
  ChangeSet inserts = t.MakeInsertChanges(ManyRows(8));
  ASSERT_TRUE(t.ApplyChanges(inserts, {10, 0}).ok());

  ChangeSet del = {{ChangeAction::kDelete, inserts[5].row_id,
                    inserts[5].values}};
  const uint64_t copies_before = t.stats().rows_rewritten_copy;
  ASSERT_TRUE(t.ApplyChanges(del, {20, 0}).ok());
  EXPECT_EQ(t.stats().rows_rewritten_copy - copies_before, 3u);
}

TEST(RowIndexTest, IncrementalMaintenanceAcrossVersions) {
  VersionedTable t(TwoCol(), /*max_partition_rows=*/4);
  ChangeSet v2 = t.MakeInsertChanges(ManyRows(6));
  ASSERT_TRUE(t.ApplyChanges(v2, {10, 0}).ok());

  // Update: delete + reinsert the same row id with new content.
  ChangeSet update;
  update.push_back({ChangeAction::kDelete, v2[0].row_id, v2[0].values});
  update.push_back({ChangeAction::kInsert, v2[0].row_id, R(1000, "updated")});
  ASSERT_TRUE(t.ApplyChanges(update, {20, 0}).ok());
  const RowLocation* loc = t.FindRow(v2[0].row_id);
  ASSERT_NE(loc, nullptr);

  // More inserts on top; every live id stays resolvable.
  ChangeSet v4 = t.MakeInsertChanges(ManyRows(6, 100));
  ASSERT_TRUE(t.ApplyChanges(v4, {30, 0}).ok());
  for (const ChangeRow& c : v4) EXPECT_NE(t.FindRow(c.row_id), nullptr);
  EXPECT_NE(t.FindRow(v2[5].row_id), nullptr);

  // The index reflects the *latest* version; time travel still reads the
  // old contents from immutable partitions.
  auto old_rows = t.ScanAt(2);
  EXPECT_EQ(old_rows.size(), 6u);
  bool found_original = false;
  for (const IdRow& r : old_rows) {
    if (r.id == v2[0].row_id) {
      found_original = RowsEqual(r.values, v2[0].values);
    }
  }
  EXPECT_TRUE(found_original);
  EXPECT_EQ(t.ScanLatest().size(), 12u);
}

TEST(RowIndexTest, OverwriteRebuildsIndex) {
  VersionedTable t(TwoCol(), /*max_partition_rows=*/4);
  ChangeSet old_rows = t.MakeInsertChanges(ManyRows(6));
  ASSERT_TRUE(t.ApplyChanges(old_rows, {10, 0}).ok());
  ASSERT_EQ(t.stats().index_rebuilds, 0u);

  std::vector<IdRow> fresh;
  for (int i = 0; i < 3; ++i) {
    fresh.push_back({static_cast<RowId>(500 + i), R(500 + i, "f")});
  }
  ASSERT_TRUE(t.Overwrite(fresh, {20, 0}).ok());
  EXPECT_EQ(t.stats().index_rebuilds, 1u);

  for (const ChangeRow& c : old_rows) EXPECT_EQ(t.FindRow(c.row_id), nullptr);
  for (const IdRow& r : fresh) EXPECT_NE(t.FindRow(r.id), nullptr);

  // Time travel to the pre-overwrite version is unaffected by the rebuild.
  EXPECT_EQ(t.ScanAt(2).size(), 6u);
}

TEST(RowIndexTest, ReclusterRebuildsWithoutLogicalChange) {
  VersionedTable t(TwoCol(), /*max_partition_rows=*/4);
  ChangeSet cs = t.MakeInsertChanges(ManyRows(10));
  ASSERT_TRUE(t.ApplyChanges(cs, {10, 0}).ok());
  t.Recluster({20, 0});
  EXPECT_EQ(t.stats().index_rebuilds, 1u);
  for (const ChangeRow& c : cs) EXPECT_NE(t.FindRow(c.row_id), nullptr);
  // Deletes still resolve through the rebuilt index.
  ChangeSet del = {{ChangeAction::kDelete, cs[3].row_id, cs[3].values}};
  ASSERT_TRUE(t.ApplyChanges(del, {30, 0}).ok());
  EXPECT_EQ(t.FindRow(cs[3].row_id), nullptr);
  EXPECT_EQ(t.ScanLatest().size(), 9u);
}

TEST(RowIndexTest, CloneCarriesIndexAndDiverges) {
  VersionedTable t(TwoCol(), /*max_partition_rows=*/4);
  ChangeSet cs = t.MakeInsertChanges(ManyRows(6));
  ASSERT_TRUE(t.ApplyChanges(cs, {10, 0}).ok());

  auto clone = t.Clone();
  ASSERT_NE(clone->FindRow(cs[0].row_id), nullptr);

  ChangeSet del = {{ChangeAction::kDelete, cs[0].row_id, cs[0].values}};
  ASSERT_TRUE(clone->ApplyChanges(del, {20, 0}).ok());
  EXPECT_EQ(clone->FindRow(cs[0].row_id), nullptr);
  EXPECT_NE(t.FindRow(cs[0].row_id), nullptr);  // original untouched
}

TEST(RowIndexTest, ValidationStillRejectsBadDeletes) {
  VersionedTable t(TwoCol(), /*max_partition_rows=*/4);
  ChangeSet cs = t.MakeInsertChanges(ManyRows(3));
  ASSERT_TRUE(t.ApplyChanges(cs, {10, 0}).ok());

  ChangeSet bogus = {{ChangeAction::kDelete, 424242, R(0, "x")}};
  auto r = t.ApplyChanges(bogus, {20, 0});
  EXPECT_FALSE(r.ok());
  // Failed validation must not mutate the index.
  for (const ChangeRow& c : cs) EXPECT_NE(t.FindRow(c.row_id), nullptr);
}

}  // namespace
}  // namespace dvs
