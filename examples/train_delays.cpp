// The paper's Listing 1, end to end: a two-stage streaming pipeline that
// tracks late-arriving trains, driven by the scheduler against a virtual
// clock for a simulated hour.
//
//   train_arrivals  (TARGET_LAG = DOWNSTREAM)  <- join of events and trains
//   delayed_trains  (TARGET_LAG = '1 minute')  <- per-hour delay counts
//
//   $ ./train_delays

#include <cstdio>

#include "common/rng.h"
#include "sched/scheduler.h"

using namespace dvs;

namespace {
void Run(DvsEngine& engine, const std::string& sql) {
  auto r = engine.Execute(sql);
  if (!r.ok()) {
    std::printf("ERROR: %s\n  in: %s\n", r.status().ToString().c_str(),
                sql.c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  VirtualClock clock(0);
  DvsEngine engine(clock);
  Scheduler scheduler(&engine, &clock);
  Rng rng(2025);

  Run(engine, "CREATE TABLE trains (id INT, name STRING)");
  Run(engine, "CREATE TABLE schedule (id INT, train_id INT, "
              "expected_arrival_time TIMESTAMP)");
  Run(engine, "CREATE TABLE train_events (type STRING, train_id INT, "
              "time TIMESTAMP, schedule_id INT)");

  constexpr int kTrains = 5;
  for (int i = 0; i < kTrains; ++i) {
    Run(engine, "INSERT INTO trains VALUES (" + std::to_string(i) +
                ", 'train_" + std::to_string(i) + "')");
  }

  // Listing 1, adapted to this engine's SQL surface (payload columns are
  // plain columns; '10 minutes' is an INTERVAL literal).
  Run(engine,
      "CREATE DYNAMIC TABLE train_arrivals "
      "TARGET_LAG = DOWNSTREAM WAREHOUSE = trains_wh AS "
      "SELECT t.id AS train_id, e.time AS arrival_time, "
      "e.schedule_id AS schedule_id "
      "FROM train_events e JOIN trains t ON e.train_id = t.id "
      "WHERE e.type = 'ARRIVAL'");
  Run(engine,
      "CREATE DYNAMIC TABLE delayed_trains "
      "TARGET_LAG = '1 minute' WAREHOUSE = trains_wh AS "
      "SELECT a.train_id AS train_id, "
      "date_trunc('hour', s.expected_arrival_time) AS hour, "
      "count_if(arrival_time - s.expected_arrival_time > "
      "INTERVAL '10 minutes') AS num_delays "
      "FROM train_arrivals a JOIN schedule s ON a.schedule_id = s.id "
      "GROUP BY ALL");

  // Simulate one hour: every ~4 minutes a train arrives, sometimes late.
  int schedule_id = 0;
  Micros next_arrival = 2 * kMicrosPerMinute;
  for (int step = 0; step < 60; ++step) {
    Micros target = (step + 1) * kMicrosPerMinute;
    while (next_arrival <= target) {
      int train = static_cast<int>(rng.Uniform(0, kTrains - 1));
      Micros expected = next_arrival;
      // ~1/3 of arrivals are more than 10 minutes late.
      Micros delay = rng.Bernoulli(0.33)
                         ? (11 + rng.Uniform(0, 20)) * kMicrosPerMinute
                         : rng.Uniform(0, 5) * kMicrosPerMinute;
      ++schedule_id;
      Run(engine, "INSERT INTO schedule VALUES (" +
                  std::to_string(schedule_id) + ", " + std::to_string(train) +
                  ", " + std::to_string(expected) + "::timestamp)");
      Run(engine, "INSERT INTO train_events VALUES ('ARRIVAL', " +
                  std::to_string(train) + ", " +
                  std::to_string(expected + delay) + "::timestamp, " +
                  std::to_string(schedule_id) + ")");
      next_arrival += rng.Uniform(2, 6) * kMicrosPerMinute;
    }
    scheduler.RunUntil(target);
  }

  // Report.
  auto result = engine.Query(
      "SELECT train_id, num_delays FROM delayed_trains ORDER BY train_id");
  std::printf("delayed_trains after 1 simulated hour:\n");
  std::printf("  train_id  num_delays\n");
  for (const Row& r : result.value().rows) {
    std::printf("  %8lld  %10lld\n",
                static_cast<long long>(r[0].int_value()),
                static_cast<long long>(r[1].int_value()));
  }

  int arrivals_refreshes = 0, delays_refreshes = 0, nodata = 0;
  for (const RefreshRecord& rec : scheduler.log()) {
    if (rec.skipped || rec.failed) continue;
    if (rec.dt_name == "train_arrivals") ++arrivals_refreshes;
    if (rec.dt_name == "delayed_trains") ++delays_refreshes;
    if (rec.action == RefreshAction::kNoData) ++nodata;
  }
  std::printf("\nscheduler: %d train_arrivals refreshes, %d delayed_trains "
              "refreshes, %d NO_DATA\n",
              arrivals_refreshes, delays_refreshes, nodata);

  ObjectId id = engine.ObjectIdOf("delayed_trains").value();
  auto lag = scheduler.LagAt(id, clock.Now());
  std::printf("delayed_trains lag at end of simulation: %s (target 1m)\n",
              lag ? FormatDuration(*lag).c_str() : "n/a");
  return 0;
}
