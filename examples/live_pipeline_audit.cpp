// Live isolation auditing: the IsolationRecorder turns a *running* pipeline
// into a §4 transaction history — DML commits as writes, DT refreshes as
// derivations over their exact source versions, SELECTs as reads — and the
// DSG analysis detects application-level read skew the moment a query mixes
// a stale DT with its fresh base table (the Read Committed case of §4).
//
//   $ ./live_pipeline_audit

#include <cstdio>

#include "dt/engine.h"
#include "isolation/dsg.h"

using namespace dvs;

namespace {
void Run(DvsEngine& engine, const std::string& sql) {
  auto r = engine.Execute(sql);
  if (!r.ok()) {
    std::printf("ERROR: %s\n  in: %s\n", r.status().ToString().c_str(),
                sql.c_str());
    std::exit(1);
  }
}

void Audit(const DvsEngine& engine, const char* when) {
  using namespace dvs::isolation;
  PhenomenaReport report = DetectPhenomena(engine.recorder()->history());
  std::printf("[audit %s] %s-> strongest level: %s\n", when,
              report.ToString().c_str(),
              PlLevelName(StrongestLevel(report)));
}
}  // namespace

int main() {
  VirtualClock clock(kMicrosPerHour);
  DvsEngine engine(clock);
  engine.EnableIsolationRecording();

  Run(engine, "CREATE TABLE accounts (id INT, balance INT)");
  Run(engine, "INSERT INTO accounts VALUES (1, 100), (2, 250)");
  Run(engine,
      "CREATE DYNAMIC TABLE balances TARGET_LAG = '1 minute' "
      "WAREHOUSE = wh AS SELECT id, sum(balance) AS total "
      "FROM accounts GROUP BY id");
  std::printf("pipeline created; recorder attached.\n\n");
  Audit(engine, "after setup     ");

  // The base table moves on; the DT is now one update behind.
  clock.Advance(kMicrosPerMinute);
  Run(engine, "UPDATE accounts SET balance = 900 WHERE id = 1");
  Audit(engine, "after update    ");

  // Reading ONLY the stale DT: a consistent snapshot of the past — clean.
  Run(engine, "SELECT * FROM balances");
  Audit(engine, "single-DT read  ");

  // Mixing the stale DT with the fresh base table: live read skew. The
  // recorder traces the DT's value back through its derivation to the old
  // account version, and the overwrite closes a G-single cycle.
  Run(engine,
      "SELECT b.total, a.balance FROM balances b "
      "JOIN accounts a ON b.id = a.id");
  Audit(engine, "mixed read      ");

  std::printf("\nrecorded history: %s\n",
              engine.recorder()->history().ToString().c_str());
  std::printf("DSG:\n%s",
              isolation::Dsg::Build(engine.recorder()->history())
                  .ToString().c_str());
  std::printf(
      "\nThe mixed read exhibits G-single — exactly why §4 only promises "
      "Read Committed\nfor queries spanning a DT and other tables, and "
      "Snapshot Isolation for single-DT reads.\n");
  return 0;
}
