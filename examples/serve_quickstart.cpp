// Serving quickstart: build a tiny DT pipeline, refresh it while reader
// threads issue snapshot queries through serve::QueryService, and print the
// §5 read-resolution behavior plus the latency histogram. The whole
// read-while-refresh loop in ~100 lines.
//
//   $ ./serve_quickstart

#include <atomic>
#include <cstdio>
#include <thread>

#include "dt/engine.h"
#include "serve/query_service.h"

using namespace dvs;

namespace {
void Run(DvsEngine& engine, const std::string& sql) {
  auto r = engine.Execute(sql);
  if (!r.ok()) {
    std::printf("ERROR: %s\n  while executing: %s\n",
                r.status().ToString().c_str(), sql.c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  VirtualClock clock(0);
  DvsEngine engine(clock);

  Run(engine, "CREATE TABLE orders (id INT, amount INT, region STRING)");
  Run(engine, "INSERT INTO orders VALUES (1, 120, 'eu'), (2, 80, 'us')");
  Run(engine,
      "CREATE DYNAMIC TABLE region_totals TARGET_LAG = '10 seconds' "
      "WAREHOUSE = wh INITIALIZE = ON_SCHEDULE "
      "AS SELECT region, count(*) AS n, sum(amount) AS total "
      "FROM orders GROUP BY ALL");
  const ObjectId dt = engine.ObjectIdOf("region_totals").value();

  // First refresh commits at t=10s; reads before that have nothing to see.
  clock.AdvanceTo(10 * kMicrosPerSecond);
  auto first = engine.refresh_engine().Refresh(dt, clock.Now());
  if (!first.ok()) {
    std::printf("ERROR: %s\n", first.status().ToString().c_str());
    return 1;
  }

  // Readers race the next refreshes. Every read resolves to the latest
  // refresh committed at or before its timestamp (§5) — never to a torn
  // in-between state — and the admission cap bounds concurrency.
  serve::ServeOptions opts;
  opts.max_concurrent_readers = 4;
  serve::QueryService service(&engine, opts);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&service, &clock, &stop, dt] {
      serve::ReadQuery q;
      q.table = dt;
      q.kind = serve::ReadKind::kScan;
      q.sum_column = 2;  // SUM(total)
      while (!stop.load(std::memory_order_acquire)) {
        q.read_ts = clock.Now();
        service.Execute(q).status();  // pre-initialization misses are fine
      }
    });
  }

  for (int round = 0; round < 20; ++round) {
    Run(engine, "INSERT INTO orders VALUES (" + std::to_string(10 + round) +
                    ", " + std::to_string(50 + round) + ", 'eu')");
    clock.Advance(10 * kMicrosPerSecond);
    auto r = engine.refresh_engine().Refresh(dt, clock.Now());
    if (!r.ok()) {
      std::printf("ERROR: %s\n", r.status().ToString().c_str());
      return 1;
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // The §5 rule, visibly: a read between two refreshes sees the earlier one.
  serve::ReadQuery q;
  q.table = dt;
  q.kind = serve::ReadKind::kScan;
  q.read_ts = 15 * kMicrosPerSecond;  // between the t=10s and t=20s commits
  auto mid = service.Execute(q);
  std::printf("read at t=15s resolved to refresh_ts=%lld (%llu rows)\n",
              static_cast<long long>(mid.value().resolved_refresh_ts /
                                     kMicrosPerSecond),
              static_cast<unsigned long long>(mid.value().rows_scanned));

  const serve::ServeStats stats = service.stats();
  std::printf("served %llu queries (%llu rows), admission peak %d (cap 4)\n",
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.rows_scanned),
              stats.admission_peak);
  std::printf("scan latency: p50 %.1f us  p95 %.1f us  p99 %.1f us  max %lld us\n",
              service.scan_latency().P50Us(), service.scan_latency().P95Us(),
              service.scan_latency().P99Us(),
              static_cast<long long>(service.scan_latency().max_us()));
  return 0;
}
