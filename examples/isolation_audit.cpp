// Reproduces the paper's §4 worked example (Figures 1 and 2): the same
// application history analyzed under persisted table semantics (refreshes
// as ordinary transactions — the read skew is invisible) and under delayed
// view semantics (refreshes as derivations — the G2 cycle appears).
//
//   $ ./isolation_audit

#include <cstdio>

#include "isolation/dsg.h"

using namespace dvs::isolation;

int main() {
  std::printf("=== Figure 1: persisted table semantics ===\n");
  History fig1;
  fig1.Write(1, "x", 1).Commit(1);
  fig1.Read(3, "x", 1);
  fig1.Write(3, "y", 3);
  fig1.Commit(3);
  fig1.Write(2, "x", 2).Commit(2);
  fig1.Read(4, "x", 2);
  fig1.Write(4, "y", 4);
  fig1.Commit(4);
  fig1.Read(5, "y", 3);
  fig1.Read(5, "x", 2);
  fig1.Commit(5);

  std::printf("history: %s\n", fig1.ToString().c_str());
  Dsg g1 = Dsg::Build(fig1);
  std::printf("%s", g1.ToString().c_str());
  PhenomenaReport r1 = DetectPhenomena(fig1);
  std::printf("phenomena: %s\n", r1.ToString().c_str());
  std::printf("strongest level: %s\n", PlLevelName(StrongestLevel(r1)));
  std::printf("--> T5 observes read skew (y3 is stale w.r.t. x2), but the\n"
              "    traditional model calls this history serializable.\n\n");

  std::printf("=== Figure 2: delayed view semantics (derivations) ===\n");
  History fig2;
  fig2.Write(1, "x", 1).Commit(1);
  fig2.Derive(3, "y", 3, {{"x", 1}}).Commit(3);
  fig2.Write(2, "x", 2).Commit(2);
  fig2.Derive(4, "y", 4, {{"x", 2}}).Commit(4);
  fig2.Read(5, "y", 3);
  fig2.Read(5, "x", 2);
  fig2.Commit(5);

  std::printf("history: %s\n", fig2.ToString().c_str());
  Dsg g2 = Dsg::Build(fig2);
  std::printf("%s", g2.ToString().c_str());
  PhenomenaReport r2 = DetectPhenomena(fig2);
  std::printf("phenomena: %s\n", r2.ToString().c_str());
  std::printf("strongest level: %s\n", PlLevelName(StrongestLevel(r2)));
  std::printf("--> the refresh transactions vanish from the DSG, the\n"
              "    anti-dependency T5 -> T2 appears, and the G2 / G-single\n"
              "    cycle reveals the read skew that was there all along.\n");
  return 0;
}
