// Quickstart: create a table, a dynamic table over it, feed data, refresh,
// and query — the whole DVS loop in ~60 lines.
//
//   $ ./quickstart

#include <cstdio>

#include "dt/engine.h"

using namespace dvs;

namespace {
void Run(DvsEngine& engine, const std::string& sql) {
  auto r = engine.Execute(sql);
  if (!r.ok()) {
    std::printf("ERROR: %s\n  while executing: %s\n",
                r.status().ToString().c_str(), sql.c_str());
    std::exit(1);
  }
  if (!r.value().message.empty()) {
    std::printf("-- %s\n", r.value().message.c_str());
  }
}

void Show(DvsEngine& engine, const std::string& sql) {
  auto r = engine.Query(sql);
  if (!r.ok()) {
    std::printf("ERROR: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("%s  [isolation: %s]\n", sql.c_str(),
              QueryIsolationName(r.value().isolation));
  std::printf("  %s\n", r.value().schema.ToString().c_str());
  for (const Row& row : r.value().rows) {
    std::printf("  %s\n", RowToString(row).c_str());
  }
}
}  // namespace

int main() {
  VirtualClock clock(0);
  DvsEngine engine(clock);

  Run(engine, "CREATE TABLE orders (id INT, customer STRING, amount INT)");
  Run(engine, "INSERT INTO orders VALUES (1, 'alice', 120), (2, 'bob', 80), "
              "(3, 'alice', 40)");

  // A dynamic table is just a SQL query plus a target lag (§3). The system
  // picks INCREMENTAL mode automatically because the query is
  // differentiable.
  Run(engine,
      "CREATE DYNAMIC TABLE spend_by_customer "
      "TARGET_LAG = '1 minute' WAREHOUSE = quickstart_wh AS "
      "SELECT customer, count(*) AS orders, sum(amount) AS total "
      "FROM orders GROUP BY ALL");

  Show(engine, "SELECT * FROM spend_by_customer ORDER BY customer");

  // New data arrives; one minute later a refresh folds it in incrementally.
  clock.Advance(kMicrosPerMinute);
  Run(engine, "INSERT INTO orders VALUES (4, 'cara', 300), (5, 'bob', 10)");
  Run(engine, "ALTER DYNAMIC TABLE spend_by_customer REFRESH");

  Show(engine, "SELECT * FROM spend_by_customer ORDER BY customer");

  // Delayed view semantics: the DT equals its defining query as of its data
  // timestamp — the paper's core guarantee, checkable by anyone.
  const auto& meta = *engine.catalog().Find("spend_by_customer").value()->dt;
  auto oracle = engine.QueryAsOf(meta.def.sql, meta.data_timestamp);
  std::printf("\nDVS check: DT has %zu rows; defining query as of ts %lld "
              "has %zu rows.\n",
              engine.Query("SELECT * FROM spend_by_customer").value().rows.size(),
              static_cast<long long>(meta.data_timestamp),
              oracle.value().size());
  return 0;
}
