// Quickstart: create a table, a dynamic table over it, feed data, refresh,
// and query — then save everything to disk, "restart", and time-travel
// across the restart. The whole DVS loop plus durability in ~100 lines.
//
//   $ ./quickstart

#include <cstdio>
#include <filesystem>

#include "dt/engine.h"
#include "persist/manager.h"
#include "persist/recover.h"

using namespace dvs;

namespace {
void Run(DvsEngine& engine, const std::string& sql) {
  auto r = engine.Execute(sql);
  if (!r.ok()) {
    std::printf("ERROR: %s\n  while executing: %s\n",
                r.status().ToString().c_str(), sql.c_str());
    std::exit(1);
  }
  if (!r.value().message.empty()) {
    std::printf("-- %s\n", r.value().message.c_str());
  }
}

void Show(DvsEngine& engine, const std::string& sql) {
  auto r = engine.Query(sql);
  if (!r.ok()) {
    std::printf("ERROR: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("%s  [isolation: %s]\n", sql.c_str(),
              QueryIsolationName(r.value().isolation));
  std::printf("  %s\n", r.value().schema.ToString().c_str());
  for (const Row& row : r.value().rows) {
    std::printf("  %s\n", RowToString(row).c_str());
  }
}
}  // namespace

int main() {
  VirtualClock clock(0);
  DvsEngine engine(clock);

  // Durability: attach a persist::Manager and every commit, refresh, and DDL
  // statement below is journaled to ./quickstart_state (checkpoint + WAL).
  const std::string state_dir = "quickstart_state";
  std::filesystem::remove_all(state_dir);
  auto opened = persist::Manager::Open({state_dir});
  if (!opened.ok()) {
    std::printf("ERROR: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  auto manager = opened.take();
  if (Status s = manager->Attach(&engine); !s.ok()) {
    std::printf("ERROR: %s\n", s.ToString().c_str());
    return 1;
  }

  Run(engine, "CREATE TABLE orders (id INT, customer STRING, amount INT)");
  Run(engine, "INSERT INTO orders VALUES (1, 'alice', 120), (2, 'bob', 80), "
              "(3, 'alice', 40)");

  // A dynamic table is just a SQL query plus a target lag (§3). The system
  // picks INCREMENTAL mode automatically because the query is
  // differentiable.
  Run(engine,
      "CREATE DYNAMIC TABLE spend_by_customer "
      "TARGET_LAG = '1 minute' WAREHOUSE = quickstart_wh AS "
      "SELECT customer, count(*) AS orders, sum(amount) AS total "
      "FROM orders GROUP BY ALL");

  Show(engine, "SELECT * FROM spend_by_customer ORDER BY customer");

  // New data arrives; one minute later a refresh folds it in incrementally.
  clock.Advance(kMicrosPerMinute);
  Run(engine, "INSERT INTO orders VALUES (4, 'cara', 300), (5, 'bob', 10)");
  Run(engine, "ALTER DYNAMIC TABLE spend_by_customer REFRESH");

  Show(engine, "SELECT * FROM spend_by_customer ORDER BY customer");

  // Delayed view semantics: the DT equals its defining query as of its data
  // timestamp — the paper's core guarantee, checkable by anyone.
  const auto& meta = *engine.catalog().Find("spend_by_customer").value()->dt;
  auto oracle = engine.QueryAsOf(meta.def.sql, meta.data_timestamp);
  std::printf("\nDVS check: DT has %zu rows; defining query as of ts %lld "
              "has %zu rows.\n",
              engine.Query("SELECT * FROM spend_by_customer").value().rows.size(),
              static_cast<long long>(meta.data_timestamp),
              oracle.value().size());

  // ---- Restart. Everything above was journaled; recover it from disk into
  // a brand-new engine, as a crashed or rebooted process would.
  const Micros before_restart = meta.data_timestamp;
  std::printf("\n-- restarting from %s --\n", state_dir.c_str());
  VirtualClock clock2(0);
  auto recovered = persist::Recover(state_dir, &clock2);
  if (!recovered.ok()) {
    std::printf("ERROR: recover: %s\n",
                recovered.status().ToString().c_str());
    return 1;
  }
  DvsEngine& engine2 = *recovered.value().engine;
  std::printf("-- recovered %llu WAL records; clock resumed at %lld --\n",
              static_cast<unsigned long long>(
                  recovered.value().wal_records_replayed),
              static_cast<long long>(clock2.Now()));

  // The reopened DT picks up right where the old process stopped...
  Show(engine2, "SELECT * FROM spend_by_customer ORDER BY customer");

  // ...new data keeps flowing...
  clock2.Advance(kMicrosPerMinute);
  Run(engine2, "INSERT INTO orders VALUES (6, 'alice', 75)");
  Run(engine2, "ALTER DYNAMIC TABLE spend_by_customer REFRESH");
  Show(engine2, "SELECT * FROM spend_by_customer ORDER BY customer");

  // ...and time travel still reaches data timestamps from BEFORE the
  // restart: HLC-indexed versions are durable state, not process state.
  auto back_then = engine2.QueryAsOf(
      "SELECT customer, sum(amount) AS total FROM orders GROUP BY ALL",
      before_restart);
  std::printf("\nTime travel across the restart: %zu customer(s) as of ts "
              "%lld (pre-restart), vs %zu now.\n",
              back_then.value().size(),
              static_cast<long long>(before_restart),
              engine2.Query("SELECT * FROM spend_by_customer").value()
                  .rows.size());
  return 0;
}
