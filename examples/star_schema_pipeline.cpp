// Star-schema pipeline: the common cheap case (appending facts) vs the
// paper's §6.4 worked limitation (updating a dimension joined with many
// facts is nearly as expensive as a full rewrite).
//
//   $ ./star_schema_pipeline

#include <cstdio>

#include "workload/star_schema.h"

using namespace dvs;

namespace {
RefreshOutcome RefreshEnriched(DvsEngine& engine, VirtualClock& clock) {
  clock.Advance(kMicrosPerMinute);
  ObjectId id = engine.ObjectIdOf("sales_enriched").value();
  auto r = engine.refresh_engine().Refresh(id, clock.Now());
  if (!r.ok()) {
    std::printf("refresh failed: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return r.take();
}
}  // namespace

int main() {
  VirtualClock clock(0);
  DvsEngine engine(clock);
  Rng rng(7);

  workload::StarOptions options;
  options.initial_facts = 2000;
  Status s = workload::BuildStarSchema(&engine, &rng, options);
  if (!s.ok()) {
    std::printf("setup failed: %s\n", s.ToString().c_str());
    return 1;
  }
  size_t dt_size =
      engine.Query("SELECT count(*) AS n FROM sales_enriched")
          .value().rows[0][0].int_value();
  std::printf("sales_enriched initialized with %zu rows (INCREMENTAL)\n\n",
              dt_size);
  std::printf("%-34s %14s %14s\n", "scenario", "rows_processed",
              "rows_changed");

  // Cheap case: append 1% new facts.
  if (!workload::AppendSales(&engine, &rng, 20).ok()) return 1;
  RefreshOutcome append_outcome = RefreshEnriched(engine, clock);
  std::printf("%-34s %14llu %14zu\n", "append 20 facts (1%)",
              static_cast<unsigned long long>(append_outcome.rows_processed),
              append_outcome.changes_applied);

  // Expensive case: rename 50% of products. Every joined fact row changes.
  if (!workload::UpdateProductFraction(&engine, &rng, 0.5).ok()) return 1;
  RefreshOutcome dim_outcome = RefreshEnriched(engine, clock);
  std::printf("%-34s %14llu %14zu\n", "update 50% of product dimension",
              static_cast<unsigned long long>(dim_outcome.rows_processed),
              dim_outcome.changes_applied);

  double ratio = static_cast<double>(dim_outcome.changes_applied) /
                 static_cast<double>(dt_size);
  std::printf(
      "\nThe dimension update touched %.0f%% of the DT — the §6.4 case where "
      "\"updating a dimension table ... can be as costly as rewriting the "
      "entire table\".\n",
      100.0 * ratio);
  return 0;
}
